//! Columnar (structure-of-arrays) wire frames for bulk-data messages.
//!
//! The legacy encodings of [`Message::FeedbackBatch`](crate::Message),
//! `SurvivalBatchReply`, `ReplicaSync`, and `RegionReply` serialize tuples
//! row-at-a-time, so the receiver decodes the wire tuple-at-a-time into
//! owned [`TupleMsg`]s and then *re*-columnarizes them before the SoA
//! dominance kernel runs. The columnar frames here (wire tags 23–26) ship
//! the same payload already in the kernel's shape: fixed-width SoA
//! sections — coordinates column-major as `f64` lanes, probabilities, and
//! packed tuple ids — behind a validated 16-byte header, so a batched
//! round goes socket → dominance kernel through a borrowed [`BatchView`]
//! with zero per-tuple allocation.
//!
//! # Frame layout
//!
//! All multi-byte section values are **little-endian** (unlike the legacy
//! big-endian row encoding) so that on little-endian targets a section can
//! be reinterpreted in place as `&[f64]` when its alignment allows. Byte
//! offsets are relative to the frame start (the tag byte):
//!
//! ```text
//! offset  size      field
//! 0       1         wire tag (23 FeedbackBatchC / 24 SurvivalBatchReplyC
//!                    / 25 ReplicaSyncC / 26 RegionReplyC)
//! 1       3         magic "DSC"
//! 4       4         n   — row count, u32 LE
//! 8       2         d   — dimensionality, u16 LE (0 for tag 24)
//! 10      6         zero padding (reserves 8-byte section alignment
//!                    relative to the frame start)
//! 16      8n        seqs         — per-row sequence number, u64 LE
//! 16+8n   8n·d      cols         — coordinates, column-major: column d'
//!                    occupies rows [16+8n+8n·d' .. 16+8n+8n·(d'+1))
//! ..      8n        probs        — existential probability P(t), f64 LE
//! ..      8n        local_probs  — local skyline probability, f64 LE
//! ..      4n        sites        — per-row home site id, u32 LE
//! ```
//!
//! total length `16 + n·(28 + 8d)`. Tag 24 replaces the tuple sections
//! with `survivals` (`8n`) followed by `pruned` (`u64 LE`): total
//! `24 + 8n`.
//!
//! # Validation
//!
//! [`BatchView::parse`] (and the [`Message`] decode arms
//! built on it) accept a frame only when the magic matches, `d ≤ 64` (the
//! [`SubspaceMask`](dsud_uncertain::SubspaceMask) bound), the padding is
//! zero, and the frame length equals the exact total implied by `(n, d)` —
//! wrong column lengths, truncated sections, and trailing bytes all reject
//! as a whole-frame decode failure (the transports answer
//! `Message::DecodeError`), never a panic or a partial read.
//!
//! # Alignment
//!
//! Heap buffers are 8-aligned in practice but not guaranteed, and a
//! columnar frame spliced behind a [`Tagged`](crate::Message::Tagged)
//! header starts at offset 9 of its enclosing frame, which misaligns every
//! section. Reads therefore probe alignment first: [`BatchView::col_f64`]
//! and [`decode_survivals_into`] reinterpret a section in place only when
//! it really is 8-aligned (the one `unsafe` cast in this crate, checked by
//! `slice::align_to`), and otherwise fall back to safe per-element
//! little-endian reads with identical results.

use bytes::{BufMut, BytesMut};
use serde::{Deserialize, Serialize};

use dsud_uncertain::{ProbeRows, TupleId};

use crate::{Message, TupleMsg};

/// Magic bytes at offsets 1..4 of every columnar frame.
pub const MAGIC: [u8; 3] = *b"DSC";

/// Fixed header length (tag + magic + n + d + padding).
pub const HEADER_LEN: usize = 16;

/// Dimensionality bound, matching `SubspaceMask`'s 64-bit word.
pub const MAX_DIMS: usize = 64;

/// Wire tag of the columnar [`Message::FeedbackBatchC`] frame.
pub const TAG_FEEDBACK_BATCH_C: u8 = 23;
/// Wire tag of the columnar [`Message::SurvivalBatchReplyC`] frame.
pub const TAG_SURVIVAL_BATCH_REPLY_C: u8 = 24;
/// Wire tag of the columnar [`Message::ReplicaSyncC`] frame.
pub const TAG_REPLICA_SYNC_C: u8 = 25;
/// Wire tag of the columnar [`Message::RegionReplyC`] frame.
pub const TAG_REGION_REPLY_C: u8 = 26;

/// Whether `tag` denotes one of the columnar frames decoded by this module.
pub(crate) fn is_columnar_tag(tag: u8) -> bool {
    (TAG_FEEDBACK_BATCH_C..=TAG_REGION_REPLY_C).contains(&tag)
}

/// Exact frame length of a tuple-block frame with `n` rows of `dims`
/// coordinates.
pub fn block_encoded_len(n: usize, dims: usize) -> usize {
    HEADER_LEN + n * (28 + 8 * dims)
}

/// Exact frame length of a columnar survival reply with `n` factors.
pub fn survivals_encoded_len(n: usize) -> usize {
    HEADER_LEN + 8 * n + 8
}

/// An owned structure-of-arrays tuple batch: the in-memory twin of the
/// columnar frame's sections, used by coordinators to build bulk frames
/// and by receivers that need owned tuples back (maintenance vectors).
///
/// Row `i` is the tuple `(sites[i], seqs[i])` with coordinates
/// `cols[d·len + i]` for dimension `d` — the same column-major layout the
/// dominance kernel consumes.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TupleBlock {
    /// Dimensionality of every row.
    pub dims: u16,
    /// Per-row home site ids.
    pub sites: Vec<u32>,
    /// Per-row sequence numbers.
    pub seqs: Vec<u64>,
    /// Column-major coordinates: `cols[d * len + i]` is row `i`'s
    /// dimension `d`.
    pub cols: Vec<f64>,
    /// Per-row existential probabilities `P(t)`.
    pub probs: Vec<f64>,
    /// Per-row local skyline probabilities.
    pub local_probs: Vec<f64>,
}

impl TupleBlock {
    /// Number of rows.
    pub fn len(&self) -> usize {
        self.sites.len()
    }

    /// Whether the block holds no rows.
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }

    /// Columnarizes a row-major tuple vector. All tuples must share one
    /// dimensionality (every protocol message does).
    pub fn from_msgs(msgs: &[TupleMsg]) -> Self {
        let n = msgs.len();
        let dims = msgs.first().map_or(0, |m| m.values.len());
        let mut block = TupleBlock {
            dims: dims as u16,
            sites: Vec::with_capacity(n),
            seqs: Vec::with_capacity(n),
            cols: vec![0.0; dims * n],
            probs: Vec::with_capacity(n),
            local_probs: Vec::with_capacity(n),
        };
        for (i, m) in msgs.iter().enumerate() {
            debug_assert_eq!(m.values.len(), dims, "block rows share one dimensionality");
            block.sites.push(m.id.site.0);
            block.seqs.push(m.id.seq);
            for (d, &v) in m.values.iter().enumerate() {
                block.cols[d * n + i] = v;
            }
            block.probs.push(m.prob);
            block.local_probs.push(m.local_prob);
        }
        block
    }

    /// Re-materializes the row-major tuple vector (bit-identical to the
    /// rows [`TupleBlock::from_msgs`] consumed).
    pub fn to_msgs(&self) -> Vec<TupleMsg> {
        let n = self.len();
        let dims = self.dims as usize;
        (0..n)
            .map(|i| TupleMsg {
                id: TupleId::new(self.sites[i], self.seqs[i]),
                values: (0..dims).map(|d| self.cols[d * n + i]).collect(),
                prob: self.probs[i],
                local_prob: self.local_probs[i],
            })
            .collect()
    }
}

/// The one alignment-checked pointer cast of the crate: reinterprets a
/// byte section as `&[f64]` when (and only when) the section is 8-aligned
/// and the target stores `f64`s little-endian — i.e. exactly when the cast
/// reads the same values the safe fallback would.
#[allow(unsafe_code)]
fn cast_f64s(bytes: &[u8]) -> Option<&[f64]> {
    if cfg!(target_endian = "big") || bytes.len() % 8 != 0 {
        return None;
    }
    // SAFETY: every 8-byte bit pattern is a valid f64, the length is a
    // multiple of 8, and `align_to` itself guarantees `mid` is correctly
    // aligned — the head/tail emptiness check below rejects any buffer
    // whose base address is not 8-aligned instead of reading it shifted.
    let (head, mid, tail) = unsafe { bytes.align_to::<f64>() };
    if head.is_empty() && tail.is_empty() {
        Some(mid)
    } else {
        None
    }
}

fn read_u32_le(bytes: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(bytes[at..at + 4].try_into().expect("length validated"))
}

fn read_u64_le(bytes: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(bytes[at..at + 8].try_into().expect("length validated"))
}

fn read_f64_le(bytes: &[u8], at: usize) -> f64 {
    f64::from_le_bytes(bytes[at..at + 8].try_into().expect("length validated"))
}

/// Parses and validates the 16-byte columnar header; returns `(n, dims)`.
fn parse_header(frame: &[u8], expected_tag: Option<u8>) -> Option<(usize, usize)> {
    if frame.len() < HEADER_LEN {
        return None;
    }
    match expected_tag {
        Some(tag) if frame[0] != tag => return None,
        None if !is_columnar_tag(frame[0]) => return None,
        _ => {}
    }
    if frame[1..4] != MAGIC || frame[10..16] != [0u8; 6] {
        return None;
    }
    let n = read_u32_le(frame, 4) as usize;
    let dims = u16::from_le_bytes([frame[8], frame[9]]) as usize;
    if dims > MAX_DIMS {
        return None;
    }
    Some((n, dims))
}

/// A borrowed, zero-copy view over a validated tuple-block frame
/// (tags 23 / 25 / 26): the decoded form the site-side fast path feeds
/// straight into the dominance kernel without materializing owned tuples.
#[derive(Debug, Clone, Copy)]
pub struct BatchView<'a> {
    n: usize,
    dims: usize,
    seqs: &'a [u8],
    cols: &'a [u8],
    probs: &'a [u8],
    local_probs: &'a [u8],
    sites: &'a [u8],
}

impl<'a> BatchView<'a> {
    /// Validates a tuple-block frame and borrows its sections.
    ///
    /// Returns `None` when the tag is not a tuple-block tag, the magic or
    /// padding is wrong, `dims` exceeds [`MAX_DIMS`], or the frame length
    /// is not exactly `16 + n·(28 + 8d)`.
    pub fn parse(frame: &'a [u8]) -> Option<Self> {
        let (n, dims) = parse_header(frame, None)?;
        if frame[0] == TAG_SURVIVAL_BATCH_REPLY_C {
            return None; // a reply frame has no tuple sections
        }
        if frame.len() != block_encoded_len(n, dims) {
            return None;
        }
        let body = &frame[HEADER_LEN..];
        let (seqs, body) = body.split_at(8 * n);
        let (cols, body) = body.split_at(8 * n * dims);
        let (probs, body) = body.split_at(8 * n);
        let (local_probs, sites) = body.split_at(8 * n);
        Some(BatchView { n, dims, seqs, cols, probs, local_probs, sites })
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the view holds no rows.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Dimensionality of every row.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Identifier of row `i`.
    pub fn id(&self, i: usize) -> TupleId {
        TupleId::new(read_u32_le(self.sites, 4 * i), read_u64_le(self.seqs, 8 * i))
    }

    /// Existential probability of row `i`.
    pub fn prob(&self, i: usize) -> f64 {
        read_f64_le(self.probs, 8 * i)
    }

    /// Local skyline probability of row `i`.
    pub fn local_prob(&self, i: usize) -> f64 {
        read_f64_le(self.local_probs, 8 * i)
    }

    /// Coordinate `d` of row `i`.
    pub fn coord(&self, d: usize, i: usize) -> f64 {
        read_f64_le(self.cols, 8 * (d * self.n + i))
    }

    /// Column `d` reinterpreted in place as `&[f64]`, when alignment and
    /// endianness allow the cast (see the module docs); `None` falls back
    /// to [`BatchView::coord`] with identical values.
    pub fn col_f64(&self, d: usize) -> Option<&'a [f64]> {
        cast_f64s(&self.cols[8 * d * self.n..8 * (d + 1) * self.n])
    }

    /// Transposes the view's coordinates into a reusable row-major probe
    /// buffer (no allocation once `rows` has seen a batch this large).
    pub fn gather_rows(&self, rows: &mut ProbeRows) {
        rows.reset(self.dims);
        for i in 0..self.n {
            rows.push_row_with(|d| self.coord(d, i));
        }
    }

    /// Re-materializes owned row-major tuples (the maintenance receivers'
    /// shape). Bit-identical to decoding the legacy frame for the same
    /// rows.
    pub fn to_msgs(&self) -> Vec<TupleMsg> {
        (0..self.n)
            .map(|i| TupleMsg {
                id: self.id(i),
                values: (0..self.dims).map(|d| self.coord(d, i)).collect(),
                prob: self.prob(i),
                local_prob: self.local_prob(i),
            })
            .collect()
    }

    /// Decodes into an owned [`TupleBlock`] (the `Message` enum's payload).
    pub fn to_block(&self) -> TupleBlock {
        let fast = |section: &[u8], out: &mut Vec<f64>| {
            if let Some(vals) = cast_f64s(section) {
                out.extend_from_slice(vals);
            } else {
                out.extend((0..section.len() / 8).map(|i| read_f64_le(section, 8 * i)));
            }
        };
        let mut cols = Vec::with_capacity(self.n * self.dims);
        fast(self.cols, &mut cols);
        let mut probs = Vec::with_capacity(self.n);
        fast(self.probs, &mut probs);
        let mut local_probs = Vec::with_capacity(self.n);
        fast(self.local_probs, &mut local_probs);
        TupleBlock {
            dims: self.dims as u16,
            sites: (0..self.n).map(|i| read_u32_le(self.sites, 4 * i)).collect(),
            seqs: (0..self.n).map(|i| read_u64_le(self.seqs, 8 * i)).collect(),
            cols,
            probs,
            local_probs,
        }
    }
}

fn put_header(buf: &mut BytesMut, tag: u8, n: usize, dims: u16) {
    buf.put_u8(tag);
    buf.put_slice(&MAGIC);
    buf.put_slice(&(n as u32).to_le_bytes());
    buf.put_slice(&dims.to_le_bytes());
    buf.put_slice(&[0u8; 6]);
}

/// Appends a tuple-block frame (header + SoA sections) to `buf`.
pub(crate) fn encode_block(tag: u8, block: &TupleBlock, buf: &mut BytesMut) {
    debug_assert!(is_columnar_tag(tag) && tag != TAG_SURVIVAL_BATCH_REPLY_C);
    let n = block.len();
    put_header(buf, tag, n, block.dims);
    for &s in &block.seqs {
        buf.put_slice(&s.to_le_bytes());
    }
    for &v in &block.cols {
        buf.put_slice(&v.to_le_bytes());
    }
    for &p in &block.probs {
        buf.put_slice(&p.to_le_bytes());
    }
    for &p in &block.local_probs {
        buf.put_slice(&p.to_le_bytes());
    }
    for &s in &block.sites {
        buf.put_slice(&s.to_le_bytes());
    }
}

/// Appends a columnar survival-reply frame (tag 24) to `buf`. Sites use
/// this directly from the frame-level fast path so a warm batched round
/// encodes its reply without constructing a [`Message`].
pub fn encode_survivals(survivals: &[f64], pruned: u64, buf: &mut BytesMut) {
    put_header(buf, TAG_SURVIVAL_BATCH_REPLY_C, survivals.len(), 0);
    for &s in survivals {
        buf.put_slice(&s.to_le_bytes());
    }
    buf.put_slice(&pruned.to_le_bytes());
}

/// Decodes a columnar survival-reply frame into a reusable factor buffer:
/// `out` is cleared and refilled (allocation-free once warm) and the
/// frame's `pruned` count is returned. `None` on any validation failure —
/// same rules as the `Message` decode arm, which this underlies.
pub fn decode_survivals_into(frame: &[u8], out: &mut Vec<f64>) -> Option<u64> {
    let (n, dims) = parse_header(frame, Some(TAG_SURVIVAL_BATCH_REPLY_C))?;
    if dims != 0 || frame.len() != survivals_encoded_len(n) {
        return None;
    }
    let section = &frame[HEADER_LEN..HEADER_LEN + 8 * n];
    out.clear();
    if let Some(vals) = cast_f64s(section) {
        out.extend_from_slice(vals);
    } else {
        out.extend((0..n).map(|i| read_f64_le(section, 8 * i)));
    }
    Some(read_u64_le(frame, HEADER_LEN + 8 * n))
}

/// Decodes any columnar frame (tags 23–26) into its owned [`Message`]
/// form. `frame` is the whole frame including the tag byte.
pub(crate) fn decode_columnar(frame: &[u8]) -> Option<Message> {
    match frame.first()? {
        &TAG_SURVIVAL_BATCH_REPLY_C => {
            let mut survivals = Vec::new();
            let pruned = decode_survivals_into(frame, &mut survivals)?;
            Some(Message::SurvivalBatchReplyC { survivals, pruned })
        }
        &TAG_FEEDBACK_BATCH_C => Some(Message::FeedbackBatchC(BatchView::parse(frame)?.to_block())),
        &TAG_REPLICA_SYNC_C => Some(Message::ReplicaSyncC(BatchView::parse(frame)?.to_block())),
        &TAG_REGION_REPLY_C => Some(Message::RegionReplyC(BatchView::parse(frame)?.to_block())),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsud_uncertain::ProbeSet;

    fn sample_msgs(n: usize, dims: usize) -> Vec<TupleMsg> {
        (0..n)
            .map(|i| TupleMsg {
                id: TupleId::new(i as u32 % 5, 100 + i as u64),
                values: (0..dims).map(|d| (i * dims + d) as f64 * 0.5).collect(),
                prob: 0.5 + (i % 4) as f64 * 0.1,
                local_prob: 0.25 + (i % 3) as f64 * 0.1,
            })
            .collect()
    }

    #[test]
    fn block_roundtrips_rows() {
        for (n, dims) in [(0, 3), (1, 2), (7, 4), (33, 1)] {
            let msgs = sample_msgs(n, dims);
            let block = TupleBlock::from_msgs(&msgs);
            assert_eq!(block.len(), n);
            assert_eq!(block.to_msgs(), msgs);
        }
    }

    #[test]
    fn view_reads_every_section() {
        let msgs = sample_msgs(9, 3);
        let block = TupleBlock::from_msgs(&msgs);
        let mut buf = BytesMut::new();
        encode_block(TAG_FEEDBACK_BATCH_C, &block, &mut buf);
        assert_eq!(buf.len(), block_encoded_len(9, 3));
        let view = BatchView::parse(&buf).expect("valid frame");
        assert_eq!(view.len(), 9);
        assert_eq!(view.dims(), 3);
        for (i, m) in msgs.iter().enumerate() {
            assert_eq!(view.id(i), m.id);
            assert_eq!(view.prob(i).to_bits(), m.prob.to_bits());
            assert_eq!(view.local_prob(i).to_bits(), m.local_prob.to_bits());
            for d in 0..3 {
                assert_eq!(view.coord(d, i).to_bits(), m.values[d].to_bits());
            }
        }
        assert_eq!(view.to_msgs(), msgs);
        assert_eq!(view.to_block(), block);
        // The aligned-cast fast path and the per-element reads agree
        // whenever the cast applies.
        for d in 0..3 {
            if let Some(col) = view.col_f64(d) {
                for (i, &v) in col.iter().enumerate() {
                    assert_eq!(v.to_bits(), view.coord(d, i).to_bits());
                }
            }
        }
    }

    #[test]
    fn gather_rows_transposes_without_regrowth() {
        let msgs = sample_msgs(16, 4);
        let block = TupleBlock::from_msgs(&msgs);
        let mut buf = BytesMut::new();
        encode_block(TAG_FEEDBACK_BATCH_C, &block, &mut buf);
        let view = BatchView::parse(&buf).expect("valid frame");
        let mut rows = ProbeRows::default();
        view.gather_rows(&mut rows);
        assert_eq!(rows.len(), 16);
        for (i, m) in msgs.iter().enumerate() {
            assert_eq!(rows.probe(i), m.values.as_slice());
        }
        let warm = rows.footprint();
        view.gather_rows(&mut rows);
        assert_eq!(rows.footprint(), warm, "regather must reuse the buffer");
    }

    #[test]
    fn survival_reply_roundtrips_through_reusable_buffer() {
        let survivals = [0.5, 0.25, 1.0, 0.9375];
        let mut buf = BytesMut::new();
        encode_survivals(&survivals, 7, &mut buf);
        assert_eq!(buf.len(), survivals_encoded_len(4));
        let mut out = vec![9.9; 2];
        assert_eq!(decode_survivals_into(&buf, &mut out), Some(7));
        assert_eq!(out, survivals);
        // An offset (misaligned) copy decodes to the same factors via the
        // safe fallback.
        let mut shifted = vec![0u8; 1];
        shifted.extend_from_slice(&buf);
        assert_eq!(decode_survivals_into(&shifted[1..], &mut out), Some(7));
        assert_eq!(out, survivals);
    }

    #[test]
    fn malformed_headers_reject_without_panicking() {
        let block = TupleBlock::from_msgs(&sample_msgs(4, 2));
        let mut buf = BytesMut::new();
        encode_block(TAG_FEEDBACK_BATCH_C, &block, &mut buf);
        let good = buf.as_ref().to_vec();

        // Truncated header.
        assert!(BatchView::parse(&good[..HEADER_LEN - 1]).is_none());
        // Bad magic.
        let mut bad = good.clone();
        bad[1] = b'X';
        assert!(BatchView::parse(&bad).is_none());
        // Nonzero padding.
        let mut bad = good.clone();
        bad[12] = 1;
        assert!(BatchView::parse(&bad).is_none());
        // Row count inflated past the payload (wrong column lengths).
        let mut bad = good.clone();
        bad[4..8].copy_from_slice(&100u32.to_le_bytes());
        assert!(BatchView::parse(&bad).is_none());
        // Dimensionality beyond the SubspaceMask bound.
        let mut bad = good.clone();
        bad[8..10].copy_from_slice(&65u16.to_le_bytes());
        assert!(BatchView::parse(&bad).is_none());
        // Truncated / padded payloads.
        assert!(BatchView::parse(&good[..good.len() - 1]).is_none());
        let mut long = good.clone();
        long.push(0);
        assert!(BatchView::parse(&long).is_none());
        // A reply tag is not a tuple block, and vice versa.
        let mut reply = BytesMut::new();
        encode_survivals(&[1.0], 0, &mut reply);
        assert!(BatchView::parse(&reply).is_none());
        let mut out = Vec::new();
        assert!(decode_survivals_into(&good, &mut out).is_none());
    }
}
