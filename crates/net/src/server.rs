//! Session-layer transport pieces for the long-lived `dsud serve` daemon:
//! query-id multiplexing over shared site links and the client-facing
//! accept loop.
//!
//! A one-shot run owns its links outright; a server cannot, because many
//! concurrent queries talk to the *same* resident sites. Two types bridge
//! the gap:
//!
//! * [`MuxLink`] — a [`Link`] that a single query owns privately, backed by
//!   a [`SharedLink`] (a mutex-guarded transport to one site) that every
//!   concurrent query shares. Each request is wrapped in
//!   [`Message::Tagged`] with the query's id and the tag/reply exchange is
//!   performed atomically under the shared lock, so replies can never be
//!   attributed to the wrong query even though the wire itself carries no
//!   reply correlation. Coordinators drive a `MuxLink` exactly as they
//!   drive a `LocalLink`, so the session layer reuses the one-shot
//!   protocol code unchanged — the property the bit-identity tests pin.
//! * [`QueryServer`] — the accept loop clients connect to: one OS thread
//!   per client, newline-delimited requests handed to a per-connection
//!   [`ClientHandler`], cooperative shutdown either from the owner
//!   ([`QueryServer::shutdown`]) or from a client
//!   ([`ClientControl::Shutdown`]).
//!
//! Bandwidth accounting stays honest in both aggregates: the shared inner
//! link meters the tagged frames (server-wide totals, id header included),
//! while the `MuxLink` meters the untagged request and reply on its own
//! per-query meter — byte-for-byte what the same query would have metered
//! as a one-shot run.

use std::collections::VecDeque;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use parking_lot::Mutex;

use crate::transport::TicketLedger;
use crate::{BandwidthMeter, Link, LinkError, Message, Ticket};

/// A transport to one site, shared by every concurrent query of a session
/// server. The mutex serializes whole request/reply exchanges, which is
/// what makes untagged replies unambiguous.
pub type SharedLink = Arc<Mutex<Box<dyn Link>>>;

/// Wraps an owned link for sharing across concurrent queries.
pub fn share(link: Box<dyn Link>) -> SharedLink {
    Arc::new(Mutex::new(link))
}

/// A per-query view of a [`SharedLink`]: tags every outgoing request with
/// the query id (see [`Message::Tagged`]) and performs the exchange
/// atomically under the shared lock.
///
/// Like [`LocalLink`](crate::LocalLink), the split-phase API is realized
/// eagerly: `send` completes the whole exchange and buffers the reply until
/// its [`Ticket`] is redeemed, preserving FIFO ticket semantics without
/// holding the shared lock between `send` and `complete`.
pub struct MuxLink {
    query_id: u64,
    shared: SharedLink,
    /// Per-query meter: records the *untagged* request and reply, so this
    /// query's traffic snapshot is bit-identical to a one-shot run's.
    meter: BandwidthMeter,
    replies: VecDeque<Message>,
    tickets: TicketLedger,
}

impl MuxLink {
    /// Creates the query-private view `query_id` of a shared site link,
    /// accounting per-query traffic on `meter`.
    pub fn new(query_id: u64, shared: SharedLink, meter: BandwidthMeter) -> Self {
        MuxLink {
            query_id,
            shared,
            meter,
            replies: VecDeque::new(),
            tickets: TicketLedger::default(),
        }
    }

    /// Tells the site to discard this query's parked cursor state.
    ///
    /// Deliberately *not* recorded on the per-query meter: the release
    /// happens after the query's outcome (and its traffic snapshot) is
    /// sealed. The shared inner link still meters it into the server-wide
    /// aggregate.
    ///
    /// # Errors
    ///
    /// Returns a [`LinkError`] when the underlying transport fails.
    pub fn release(&mut self) -> Result<(), LinkError> {
        let msg = Message::Tagged { query_id: self.query_id, inner: Box::new(Message::Release) };
        self.shared.lock().call(msg).map(|_| ())
    }
}

impl Link for MuxLink {
    fn send(&mut self, msg: Message) -> Result<Ticket, LinkError> {
        self.meter.record(&msg);
        let tagged = Message::Tagged { query_id: self.query_id, inner: Box::new(msg) };
        // One atomic exchange under the shared lock: the reply read while
        // holding it is necessarily ours.
        let reply = self.shared.lock().call(tagged)?;
        self.meter.record(&reply);
        self.replies.push_back(reply);
        Ok(self.tickets.issue())
    }

    fn complete(&mut self, ticket: Ticket) -> Result<Message, LinkError> {
        self.tickets.redeem(ticket);
        Ok(self.replies.pop_front().expect("a redeemed ticket has a buffered reply"))
    }

    fn reconnect(&mut self) -> Result<(), LinkError> {
        self.replies.clear();
        self.tickets.reset();
        self.shared.lock().reconnect()
    }
}

impl std::fmt::Debug for MuxLink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MuxLink").field("query_id", &self.query_id).finish_non_exhaustive()
    }
}

/// What a [`ClientHandler`] wants done with the connection after a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClientControl {
    /// Keep reading requests from this client.
    Continue,
    /// Close this connection; the server keeps running.
    Close,
    /// Close this connection and shut the whole server down.
    Shutdown,
}

/// Per-connection request processor for a [`QueryServer`].
///
/// The server reads newline-delimited requests and hands each line to
/// `handle_line` together with the connection's write half; the handler
/// writes any responses (newline-delimited, flushed) and says what to do
/// next. One handler instance serves one connection, so it may carry
/// per-client state.
pub trait ClientHandler: Send {
    /// Processes one request line.
    ///
    /// # Errors
    ///
    /// Returns the I/O error when writing a response fails; the server
    /// closes the connection.
    fn handle_line(&mut self, line: &str, out: &mut dyn Write) -> io::Result<ClientControl>;
}

/// A running client-facing server: loopback listener, one thread per
/// connection, cooperative shutdown.
///
/// Dropping the server shuts it down and joins its threads.
#[derive(Debug)]
pub struct QueryServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<io::Result<()>>>,
}

impl QueryServer {
    /// The loopback address clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, disconnects idle waits, and joins every thread.
    ///
    /// # Errors
    ///
    /// Returns the listener's accept error if the accept thread died on
    /// one, or an error if it panicked.
    pub fn shutdown(mut self) -> io::Result<()> {
        self.stop_and_join()
    }

    /// Blocks until the server stops on its own — i.e. until a client
    /// requests [`ClientControl::Shutdown`]. This is what `dsud serve`
    /// parks its main thread on.
    ///
    /// # Errors
    ///
    /// Returns the accept thread's error, if any.
    pub fn wait(mut self) -> io::Result<()> {
        let Some(handle) = self.handle.take() else {
            return Ok(());
        };
        match handle.join() {
            Ok(result) => result,
            Err(_) => Err(io::Error::other("query server thread panicked")),
        }
    }

    fn stop_and_join(&mut self) -> io::Result<()> {
        let Some(handle) = self.handle.take() else {
            return Ok(());
        };
        self.stop.store(true, Ordering::SeqCst);
        // Unblock a pending accept with a throwaway connection; if the
        // thread is already gone this simply fails.
        let _ = TcpStream::connect(self.addr);
        match handle.join() {
            Ok(result) => result,
            Err(_) => Err(io::Error::other("query server thread panicked")),
        }
    }
}

impl Drop for QueryServer {
    fn drop(&mut self) {
        let _ = self.stop_and_join();
    }
}

/// Binds a loopback listener on `port` (0 picks an ephemeral port) and
/// spawns the accept loop: each connection gets its own thread and a fresh
/// handler from `factory`.
///
/// # Errors
///
/// Returns the bind error if the port is unavailable.
pub fn spawn_query_server<F, H>(port: u16, factory: F) -> io::Result<QueryServer>
where
    F: Fn() -> H + Send + 'static,
    H: ClientHandler + 'static,
{
    let listener = TcpListener::bind(("127.0.0.1", port))?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop_accept = Arc::clone(&stop);
    let handle = std::thread::Builder::new().name("dsud-query-server".into()).spawn(
        move || -> io::Result<()> {
            let mut clients: Vec<JoinHandle<()>> = Vec::new();
            loop {
                if stop_accept.load(Ordering::SeqCst) {
                    break;
                }
                let (stream, _) = listener.accept()?;
                if stop_accept.load(Ordering::SeqCst) {
                    break; // the throwaway unblock connection
                }
                let mut handler = factory();
                let stop_client = Arc::clone(&stop_accept);
                let client = std::thread::Builder::new()
                    .name("dsud-client".into())
                    .spawn(move || serve_client(stream, &mut handler, &stop_client, addr))?;
                clients.push(client);
                // Reap finished client threads so a long-lived daemon does
                // not accumulate handles.
                clients.retain(|c| !c.is_finished());
            }
            for client in clients {
                let _ = client.join();
            }
            Ok(())
        },
    )?;
    Ok(QueryServer { addr, stop, handle: Some(handle) })
}

/// Serves one client connection until it closes, errors, or asks to stop.
/// Client-side I/O errors (e.g. a vanished client) end the connection
/// quietly — they must not take the server down.
fn serve_client<H: ClientHandler>(
    stream: TcpStream,
    handler: &mut H,
    stop: &AtomicBool,
    server_addr: SocketAddr,
) {
    let _ = stream.set_nodelay(true);
    // Poll the stop flag between reads so an idle connection cannot hold
    // up an owner-initiated shutdown.
    let _ = stream.set_read_timeout(Some(std::time::Duration::from_millis(50)));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut writer = stream;
    let mut reader = BufReader::new(read_half);
    let mut line = String::new();
    loop {
        match reader.read_line(&mut line) {
            Ok(0) => return, // client hung up
            Ok(_) => {}
            Err(e) if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) => {
                // A timeout may leave a partial line in `line`; keep it and
                // resume reading where we left off.
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
            Err(_) => return,
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            line.clear();
            continue;
        }
        match handler.handle_line(trimmed, &mut writer) {
            Ok(ClientControl::Continue) => {}
            Ok(ClientControl::Close) => return,
            Ok(ClientControl::Shutdown) => {
                stop.store(true, Ordering::SeqCst);
                // Unblock the accept loop so it can wind down.
                let _ = TcpStream::connect(server_addr);
                return;
            }
            Err(_) => return,
        }
        line.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LocalLink, Service};

    /// A site stub that records the raw frames it sees and answers
    /// Tagged frames with an untagged echo of the query id.
    struct TagEcho;
    impl Service for TagEcho {
        fn handle(&mut self, msg: Message) -> Message {
            match msg {
                Message::Tagged { query_id, inner } => match *inner {
                    Message::Release => Message::Ack,
                    _ => Message::SurvivalReply { survival: query_id as f64, pruned: 0 },
                },
                _ => Message::Ack,
            }
        }
    }

    #[test]
    fn mux_links_route_replies_to_their_own_query() {
        let server_meter = BandwidthMeter::new();
        let shared = share(Box::new(LocalLink::new(TagEcho, server_meter.clone())));
        let meter_a = BandwidthMeter::new();
        let meter_b = BandwidthMeter::new();
        let mut a = MuxLink::new(1, Arc::clone(&shared), meter_a.clone());
        let mut b = MuxLink::new(2, Arc::clone(&shared), meter_b.clone());
        let ra = a.call(Message::RequestNext).unwrap();
        let rb = b.call(Message::RequestNext).unwrap();
        assert_eq!(ra, Message::SurvivalReply { survival: 1.0, pruned: 0 });
        assert_eq!(rb, Message::SurvivalReply { survival: 2.0, pruned: 0 });
        // Per-query meters saw the untagged exchange; the shared link's
        // meter saw the tagged frames (8-byte id heavier per request).
        let pq = meter_a.snapshot().total();
        assert_eq!(pq.messages, 2);
        assert_eq!(pq.bytes, Message::RequestNext.encoded_len() as u64 + ra.encoded_len() as u64);
        let agg = server_meter.snapshot().total();
        assert_eq!(agg.messages, 4);
        assert_eq!(agg.bytes, pq.bytes * 2 + 2 * 9);
    }

    #[test]
    fn mux_release_is_not_charged_to_the_query() {
        let server_meter = BandwidthMeter::new();
        let shared = share(Box::new(LocalLink::new(TagEcho, server_meter.clone())));
        let meter = BandwidthMeter::new();
        let mut link = MuxLink::new(7, shared, meter.clone());
        link.release().unwrap();
        assert_eq!(meter.snapshot().total().messages, 0);
        assert_eq!(server_meter.snapshot().total().messages, 2);
    }

    #[test]
    fn mux_ticket_semantics_match_local_link() {
        let shared = share(Box::new(LocalLink::new(TagEcho, BandwidthMeter::new())));
        let mut link = MuxLink::new(3, shared, BandwidthMeter::new());
        let t1 = link.send(Message::RequestNext).unwrap();
        let t2 = link.send(Message::RequestNext).unwrap();
        assert!(link.complete(t1).is_ok());
        assert!(link.complete(t2).is_ok());
        let t3 = link.send(Message::RequestNext).unwrap();
        link.reconnect().unwrap();
        let t4 = link.send(Message::RequestNext).unwrap();
        assert!(link.complete(t4).is_ok());
        let _ = t3; // abandoned by reconnect; redeeming it would panic
    }

    /// Echoes each line back prefixed with `ok:`; `close` closes the
    /// connection, `stop` shuts the server down.
    struct EchoHandler;
    impl ClientHandler for EchoHandler {
        fn handle_line(&mut self, line: &str, out: &mut dyn Write) -> io::Result<ClientControl> {
            match line {
                "close" => Ok(ClientControl::Close),
                "stop" => Ok(ClientControl::Shutdown),
                _ => {
                    writeln!(out, "ok:{line}")?;
                    out.flush()?;
                    Ok(ClientControl::Continue)
                }
            }
        }
    }

    fn roundtrip(addr: SocketAddr, send: &str) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        writeln!(stream, "{send}").unwrap();
        let mut reply = String::new();
        BufReader::new(stream).read_line(&mut reply).unwrap();
        reply.trim().to_string()
    }

    #[test]
    fn query_server_serves_concurrent_clients_and_stops_on_request() {
        let server = spawn_query_server(0, || EchoHandler).unwrap();
        let addr = server.addr();
        let replies: Vec<String> = std::thread::scope(|s| {
            let handles: Vec<_> =
                (0..4).map(|i| s.spawn(move || roundtrip(addr, &format!("hello-{i}")))).collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for (i, reply) in replies.iter().enumerate() {
            assert_eq!(reply, &format!("ok:hello-{i}"));
        }
        // A client-requested shutdown unblocks `wait`.
        let mut stream = TcpStream::connect(addr).unwrap();
        writeln!(stream, "stop").unwrap();
        server.wait().unwrap();
    }

    #[test]
    fn query_server_owner_shutdown_is_clean() {
        let server = spawn_query_server(0, || EchoHandler).unwrap();
        let addr = server.addr();
        assert_eq!(roundtrip(addr, "ping"), "ok:ping");
        server.shutdown().unwrap();
    }
}
