//! Topology layer: sites → regional aggregators → root.
//!
//! A flat coordinator talks to all `m` sites over `m` links, so its
//! per-round fan-out — feedback broadcasts, survival scatters, the
//! ascending-site fold — grows O(m). This module interposes a tree of
//! [`Aggregator`] services between the root and the sites: the root holds
//! one physical link per *top-level group* (O(√m) for a single aggregation
//! layer, O(log m) for a deep tree) and speaks a compact aggregate
//! protocol on it, while each aggregator terminates the ordinary
//! site-facing protocol downward.
//!
//! Three frames make up the upward protocol (see [`Message`]):
//!
//! * [`Message::AggBroadcast`] — one payload addressed to a whole member
//!   list; the payload crosses the root link **once** instead of once per
//!   member, which is where the root-link byte cut comes from.
//! * [`Message::AggScatter`] — distinct per-site payloads coalesced into
//!   one frame per group.
//! * [`Message::AggReplies`] — the merged per-site outcomes, in ascending
//!   site order, with child-link errors forwarded in reply position.
//!
//! # Bit-identity
//!
//! Aggregators are deliberately *generic* scatter–gather proxies: they
//! never fold survival products, compare probabilities, or otherwise touch
//! algorithm state. All arithmetic stays at the root, which iterates
//! member replies in the same ascending site order a flat run uses (the
//! [`f64` fold order matters — multiplication is not associative]).
//! A tree run therefore produces bit-identical skylines, progressive
//! order, and `RunStats` at every fanout, transport, wire format, pool
//! size, and pipeline depth; only the *transport accounting* (frames and
//! bytes on the root link) changes, which is exactly the quantity the
//! topology experiment measures.
//!
//! [`f64` fold order matters — multiplication is not associative]: Fanout
//!
//! The alternative design — per-site virtual links at the root keeping the
//! coordinators topology-blind — was rejected: it preserves the protocol
//! but sends one frame per site over the root link, merging nothing, which
//! defeats the whole point of the layer.

use std::collections::{HashMap, VecDeque};

use dsud_obs::{Counter, Recorder};

use crate::message::AggReply;
use crate::{Link, LinkError, Message, Service, Ticket};

/// One position in a [`FanPlan`]: either a site itself or an aggregator
/// over an ascending run of child nodes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FanNode {
    /// A site, identified by its index.
    Leaf(u32),
    /// An aggregator over these children (member sites ascending).
    Node(Vec<FanNode>),
}

impl FanNode {
    /// The member sites under this node, in ascending order.
    pub fn members(&self) -> Vec<u32> {
        let mut out = Vec::new();
        self.collect_members(&mut out);
        out
    }

    fn collect_members(&self, out: &mut Vec<u32>) {
        match self {
            FanNode::Leaf(site) => out.push(*site),
            FanNode::Node(children) => {
                for child in children {
                    child.collect_members(out);
                }
            }
        }
    }
}

/// The shape of the coordinator-to-site fan-out: which nodes the root's
/// physical links lead to, and what hangs under each.
///
/// Built by `dsud-core`'s `Topology::plan`; consumed by the cluster
/// assembly (to wire aggregator services) and by [`Fanout`] (to route
/// per-site operations onto group links). Sites are always the ascending
/// range `0..sites`, chunked in order, so every group is a contiguous
/// ascending run and splicing group replies back together preserves
/// global ascending site order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FanPlan {
    roots: Vec<FanNode>,
    depth: u32,
    sites: usize,
}

impl FanPlan {
    /// The flat plan: every site is a root-level leaf (no aggregation).
    pub fn flat(sites: usize) -> Self {
        FanPlan { roots: (0..sites as u32).map(FanNode::Leaf).collect(), depth: 0, sites }
    }

    /// A bounded-fanout tree: leaves are chunked into aggregators of at
    /// most `fanout` children, repeatedly, until the root itself holds at
    /// most `fanout` links. `sites <= fanout` needs no aggregation and
    /// degenerates to [`FanPlan::flat`].
    ///
    /// # Panics
    ///
    /// Panics when `fanout < 2` — such a "tree" merges nothing (the CLI
    /// rejects it long before this).
    pub fn tree(sites: usize, fanout: usize) -> Self {
        assert!(fanout >= 2, "a tree fanout below 2 merges nothing");
        if sites <= fanout {
            return Self::flat(sites);
        }
        let mut layer: Vec<FanNode> = (0..sites as u32).map(FanNode::Leaf).collect();
        let mut depth = 0;
        while layer.len() > fanout {
            layer = layer.chunks(fanout).map(|chunk| FanNode::Node(chunk.to_vec())).collect();
            depth += 1;
        }
        FanPlan { roots: layer, depth, sites }
    }

    /// The `auto` plan: one aggregation layer of `⌈√sites⌉`-ary groups,
    /// giving the root O(√m) links — the classic two-level balance where
    /// root fan-out and per-aggregator fan-out are equal.
    pub fn sqrt_auto(sites: usize) -> Self {
        let fanout = (sites as f64).sqrt().ceil() as usize;
        if fanout < 2 {
            return Self::flat(sites);
        }
        Self::tree(sites, fanout)
    }

    /// Number of sites this plan fans out to.
    pub fn sites(&self) -> usize {
        self.sites
    }

    /// Aggregation layers between the root and the sites (0 = flat).
    pub fn depth(&self) -> u32 {
        self.depth
    }

    /// Physical links the root holds.
    pub fn root_fanout(&self) -> usize {
        self.roots.len()
    }

    /// Whether the plan has no aggregation at all.
    pub fn is_flat(&self) -> bool {
        self.depth == 0
    }

    /// The root-level nodes, in ascending member order.
    pub fn roots(&self) -> &[FanNode] {
        &self.roots
    }

    /// Member sites per root link, each ascending.
    pub fn groups(&self) -> Vec<Vec<u32>> {
        self.roots.iter().map(FanNode::members).collect()
    }
}

/// Receipt for a per-site request put in flight with [`Fanout::send`],
/// redeemed with [`Fanout::complete`] — the topology-aware counterpart of
/// a transport [`Ticket`].
#[derive(Debug)]
pub struct OpTicket(TicketRepr);

#[derive(Debug)]
enum TicketRepr {
    Flat(Ticket),
    Tree(u64),
}

/// Tree-mode routing state: which group link serves each site, plus the
/// per-link FIFO of single-site operations still in flight.
struct TreeState {
    /// Member sites per physical link, ascending.
    groups: Vec<Vec<u32>>,
    /// Site index → physical link index.
    group_of: Vec<usize>,
    /// Per physical link: `(op id, inner ticket, site)` in send order.
    /// Transport tickets redeem in send order, so completing op `k` first
    /// drains every earlier entry into the stash.
    fifo: Vec<VecDeque<(u64, Ticket, u32)>>,
    /// Results of operations completed ahead of their own redemption.
    stash: HashMap<u64, Result<Message, LinkError>>,
    /// First fatal error per physical link, if any. A root link that
    /// failed once is an aggregator lost with its whole subtree: every
    /// later operation routed through it fails with the same error
    /// instead of retrying the transport, so the subtree degrades as a
    /// unit even when the underlying fault was transient.
    dead: Vec<Option<LinkError>>,
    next_op: u64,
    recorder: Recorder,
}

impl TreeState {
    /// Marks group link `g` dead for the rest of the query and fails every
    /// single-site op still in flight on it. Idempotent: the first error
    /// wins, so replays report a consistent cause.
    fn poison(&mut self, g: usize, e: &LinkError) {
        if self.dead[g].is_none() {
            self.dead[g] = Some(e.clone());
        }
        let cause = self.dead[g].clone().expect("just ensured");
        while let Some((id, _ticket, _site)) = self.fifo[g].pop_front() {
            self.stash.insert(id, Err(cause.clone()));
        }
    }
}

/// The coordinators' view of the cluster: `len()` virtual sites reachable
/// through [`Fanout::broadcast`] / [`Fanout::scatter`] / per-site calls,
/// regardless of how many physical links the topology actually uses.
///
/// Flat mode delegates to the existing [`crate::broadcast`] /
/// [`crate::scatter`] free functions and direct link operations, so a
/// flat `Fanout` is byte- and behavior-identical to the pre-topology
/// coordinators. Tree mode wraps operations in aggregate frames, one per
/// involved group, and splices the merged replies back into ascending
/// site order; a physical-link failure fans out to every member site in
/// reply position, exactly where a flat run would report the same error
/// per site — and permanently: the first failure marks the link dead for
/// the rest of this fan-out's life, so members the failing frame did not
/// address fail on their next operation instead of riding out a
/// transient fault their groupmates already died of. An aggregator is
/// lost with its whole subtree or not at all.
///
/// Tree-mode group operations are driven send-all-then-drain on the
/// caller's thread: group links carry pipelined single-site sends (the
/// `--pipeline` refill tickets) whose transport tickets must redeem in
/// send order, so pool-parallel `call`s on those links would interleave
/// redemptions. Parallelism is instead preserved *inside* each
/// aggregator, which fans out to its children through the pool-parallel
/// scatter path.
pub struct Fanout<'a> {
    links: &'a mut [Box<dyn Link>],
    tree: Option<TreeState>,
}

impl<'a> Fanout<'a> {
    /// A flat fan-out: one link per site, no aggregation, identical to the
    /// pre-topology coordinator behavior.
    pub fn flat(links: &'a mut [Box<dyn Link>]) -> Self {
        Fanout { links, tree: None }
    }

    /// A fan-out routed through `plan`. A flat plan (or one whose link
    /// count says no aggregation happened) behaves exactly like
    /// [`Fanout::flat`]; otherwise `links` must hold one physical link per
    /// root group, and per-site operations are wrapped in aggregate
    /// frames. Root-side merge/fold counters are recorded on `recorder`.
    ///
    /// # Panics
    ///
    /// Panics when the link count matches neither the plan's site count
    /// (flat) nor its root fan-out (tree).
    pub fn tree(links: &'a mut [Box<dyn Link>], plan: &FanPlan, recorder: Recorder) -> Self {
        if plan.is_flat() {
            assert_eq!(links.len(), plan.sites(), "flat plan needs one link per site");
            return Self::flat(links);
        }
        assert_eq!(
            links.len(),
            plan.root_fanout(),
            "tree plan needs one physical link per root group"
        );
        let groups = plan.groups();
        let mut group_of = vec![0usize; plan.sites()];
        for (g, members) in groups.iter().enumerate() {
            debug_assert!(members.windows(2).all(|w| w[0] < w[1]), "group members ascend");
            for &site in members {
                group_of[site as usize] = g;
            }
        }
        let fifo = (0..groups.len()).map(|_| VecDeque::new()).collect();
        Fanout {
            links,
            tree: Some(TreeState {
                dead: vec![None; groups.len()],
                groups,
                group_of,
                fifo,
                stash: HashMap::new(),
                next_op: 0,
                recorder,
            }),
        }
    }

    /// Number of virtual sites (not physical links).
    pub fn len(&self) -> usize {
        match &self.tree {
            Some(t) => t.group_of.len(),
            None => self.links.len(),
        }
    }

    /// Whether the fan-out reaches no sites at all.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Sends `msg` to every site selected by `include` and collects the
    /// replies in ascending site order, mirroring [`crate::broadcast`].
    pub fn broadcast<F>(
        &mut self,
        include: F,
        msg: &Message,
    ) -> Vec<(usize, Result<Message, LinkError>)>
    where
        F: Fn(usize) -> bool,
    {
        let Some(tree) = &mut self.tree else {
            return crate::broadcast(self.links, include, msg);
        };
        // Send phase: one merged frame per group with at least one
        // included member.
        let mut sent: Vec<(usize, Vec<u32>, Result<Ticket, LinkError>)> = Vec::new();
        for g in 0..tree.groups.len() {
            let sites: Vec<u32> =
                tree.groups[g].iter().copied().filter(|s| include(*s as usize)).collect();
            if sites.is_empty() {
                continue;
            }
            if let Some(e) = tree.dead[g].clone() {
                sent.push((g, sites, Err(e)));
                continue;
            }
            // The payload crossed the root link once for `sites.len()`
            // logical deliveries: the merge saved the difference.
            tree.recorder.add(Counter::AggMergedFrames, sites.len() as u64 - 1);
            let frame =
                Message::AggBroadcast { sites: sites.clone(), inner: Box::new(msg.clone()) };
            let outcome = self.links[g].send(frame);
            sent.push((g, sites, outcome));
        }
        self.drain_group_replies(sent)
    }

    /// Sends a distinct payload to each listed site and collects the
    /// replies in ascending site order, mirroring [`crate::scatter`].
    ///
    /// # Panics
    ///
    /// Panics if two requests name the same site.
    pub fn scatter(
        &mut self,
        requests: Vec<(usize, Message)>,
    ) -> Vec<(usize, Result<Message, LinkError>)> {
        let Some(tree) = &mut self.tree else {
            return crate::scatter(self.links, requests);
        };
        let mut per_group: Vec<Vec<(u32, Message)>> =
            (0..tree.groups.len()).map(|_| Vec::new()).collect();
        let mut seen = vec![false; tree.group_of.len()];
        for (site, msg) in requests {
            assert!(!std::mem::replace(&mut seen[site], true), "duplicate scatter target {site}");
            per_group[tree.group_of[site]].push((site as u32, msg));
        }
        let mut sent: Vec<(usize, Vec<u32>, Result<Ticket, LinkError>)> = Vec::new();
        for (g, mut parts) in per_group.into_iter().enumerate() {
            if parts.is_empty() {
                continue;
            }
            parts.sort_by_key(|(site, _)| *site);
            let sites: Vec<u32> = parts.iter().map(|(site, _)| *site).collect();
            if let Some(e) = tree.dead[g].clone() {
                sent.push((g, sites, Err(e)));
                continue;
            }
            tree.recorder.add(Counter::AggMergedFrames, sites.len() as u64 - 1);
            let outcome = self.links[g].send(Message::AggScatter { parts });
            sent.push((g, sites, outcome));
        }
        self.drain_group_replies(sent)
    }

    /// Plan-phase gather: one [`Message::SketchRequest`] round-trip per
    /// *physical* link — per site when flat, per root aggregator when
    /// tree-routed (each aggregator merges its whole subtree into one
    /// sketch, so the root receives at most `root_fanout` frames either
    /// way). Deliberately outside the tree's FIFO op tracking: no query
    /// operation is in flight at plan time, and a failed or malformed
    /// reply never poisons a link — the planner degrades to static and
    /// the query proceeds untouched. Already-poisoned links report their
    /// stored error without being re-driven.
    pub fn gather_sketches(&mut self) -> Vec<Result<Message, LinkError>> {
        let dead: Vec<Option<LinkError>> = match &self.tree {
            Some(t) => t.dead.clone(),
            None => vec![None; self.links.len()],
        };
        self.links
            .iter_mut()
            .zip(dead)
            .map(|(l, d)| match d {
                Some(e) => Err(e),
                None => l.call(Message::SketchRequest),
            })
            .collect()
    }

    /// Round-trips one request to one site.
    pub fn call(&mut self, site: usize, msg: Message) -> Result<Message, LinkError> {
        if self.tree.is_none() {
            return self.links[site].call(msg);
        }
        let ticket = self.send(site, msg)?;
        self.complete(site, ticket)
    }

    /// Puts a single-site request in flight; the topology counterpart of
    /// [`Link::send`]. Tree mode rides a one-part [`Message::AggScatter`]
    /// on the site's group link.
    ///
    /// # Errors
    ///
    /// Returns a [`LinkError`] when the request cannot be sent; nothing is
    /// left outstanding.
    pub fn send(&mut self, site: usize, msg: Message) -> Result<OpTicket, LinkError> {
        let Some(tree) = &mut self.tree else {
            return self.links[site].send(msg).map(|t| OpTicket(TicketRepr::Flat(t)));
        };
        let g = tree.group_of[site];
        if let Some(e) = tree.dead[g].clone() {
            return Err(e);
        }
        let frame = Message::AggScatter { parts: vec![(site as u32, msg)] };
        let ticket = match self.links[g].send(frame) {
            Ok(ticket) => ticket,
            Err(e) => {
                tree.poison(g, &e);
                return Err(e);
            }
        };
        let op = tree.next_op;
        tree.next_op += 1;
        tree.fifo[g].push_back((op, ticket, site as u32));
        Ok(OpTicket(TicketRepr::Tree(op)))
    }

    /// Redeems a [`Fanout::send`] ticket for its reply.
    ///
    /// Group links redeem transport tickets in send order, so completing
    /// an op whose link carries earlier outstanding ops first drains those
    /// into a stash; their own redemption later is a lookup. This keeps
    /// the coordinator free to complete per-site ops in any order — the
    /// pipelined refill path completes uploads per-site while a broadcast
    /// may have intervened on the same group link.
    ///
    /// # Errors
    ///
    /// Returns a [`LinkError`] when the group link or the aggregator's
    /// child link failed.
    ///
    /// # Panics
    ///
    /// Panics when the ticket was not issued by this fan-out (a
    /// coordinator bug).
    pub fn complete(&mut self, site: usize, ticket: OpTicket) -> Result<Message, LinkError> {
        let op = match ticket.0 {
            TicketRepr::Flat(t) => return self.links[site].complete(t),
            TicketRepr::Tree(op) => op,
        };
        let tree = self.tree.as_mut().expect("a tree ticket comes from a tree fan-out");
        let g = tree.group_of[site];
        loop {
            if let Some(result) = tree.stash.remove(&op) {
                return result;
            }
            let Some((id, inner, s)) = tree.fifo[g].pop_front() else {
                panic!("fanout op {op} was never sent on site {site}'s group link");
            };
            let result = complete_single(&mut self.links[g], &tree.recorder, inner, s);
            if let Err(e) = &result {
                // Failing ops behind it drain into the stash, so the
                // stash lookup above may now hold `op` itself.
                tree.poison(g, e);
            }
            if id == op {
                return result;
            }
            tree.stash.insert(id, result);
        }
    }

    /// Completion phase shared by tree broadcast/scatter: for each group,
    /// first drain any earlier single-site ops (transport FIFO), then
    /// redeem the group frame and splice its merged replies into ascending
    /// site order. Failed sends fan their error out to every member.
    fn drain_group_replies(
        &mut self,
        sent: Vec<(usize, Vec<u32>, Result<Ticket, LinkError>)>,
    ) -> Vec<(usize, Result<Message, LinkError>)> {
        let tree = self.tree.as_mut().expect("tree mode");
        let mut out = Vec::new();
        for (g, sites, outcome) in sent {
            match outcome {
                Err(e) => {
                    tree.poison(g, &e);
                    for site in sites {
                        out.push((site as usize, Err(e.clone())));
                    }
                }
                Ok(ticket) => {
                    while let Some((id, inner, s)) = tree.fifo[g].pop_front() {
                        let result = complete_single(&mut self.links[g], &tree.recorder, inner, s);
                        if let Err(e) = &result {
                            tree.poison(g, e);
                        }
                        tree.stash.insert(id, result);
                    }
                    // A drain failure above killed the link; the group
                    // frame it still owes can never be redeemed.
                    let reply = match tree.dead[g].clone() {
                        Some(e) => Err(e),
                        None => self.links[g].complete(ticket),
                    };
                    if let Err(e) = &reply {
                        tree.poison(g, e);
                    }
                    splice_group_reply(&tree.recorder, &sites, reply, &mut out);
                }
            }
        }
        out
    }
}

/// Splices one group's merged reply into per-site `(index, result)` pairs,
/// pairing each addressed site with its [`AggReply`] entry. Shape
/// mismatches (a non-aggregate reply, a missing or misordered entry)
/// surface as [`LinkError::Malformed`] — the same error an undecodable
/// flat reply produces.
fn splice_group_reply(
    recorder: &Recorder,
    sites: &[u32],
    reply: Result<Message, LinkError>,
    out: &mut Vec<(usize, Result<Message, LinkError>)>,
) {
    match reply {
        Err(e) => {
            for &site in sites {
                out.push((site as usize, Err(e.clone())));
            }
        }
        Ok(Message::AggReplies { replies }) => {
            recorder.add(Counter::AggFoldOps, replies.len() as u64);
            let mut entries = replies.into_iter().peekable();
            for &site in sites {
                let result = match entries.peek() {
                    Some((s, _)) if *s == site => {
                        entries.next().expect("peeked entry exists").1.into_result()
                    }
                    _ => Err(LinkError::Malformed),
                };
                out.push((site as usize, result));
            }
        }
        Ok(_) => {
            for &site in sites {
                out.push((site as usize, Err(LinkError::Malformed)));
            }
        }
    }
}

/// Redeems the transport ticket of a one-part [`Message::AggScatter`] and
/// unwraps the single [`AggReply`] entry it owes.
fn complete_single(
    link: &mut Box<dyn Link>,
    recorder: &Recorder,
    ticket: Ticket,
    site: u32,
) -> Result<Message, LinkError> {
    let reply = link.complete(ticket)?;
    recorder.add(Counter::AggFoldOps, 1);
    unwrap_single(site, reply)
}

/// Unwraps a single-site [`Message::AggReplies`] down to the member's own
/// outcome.
fn unwrap_single(site: u32, reply: Message) -> Result<Message, LinkError> {
    match reply {
        Message::AggReplies { replies } if replies.len() == 1 && replies[0].0 == site => {
            replies.into_iter().next().expect("len checked").1.into_result()
        }
        _ => Err(LinkError::Malformed),
    }
}

/// Per-child wiring of an [`Aggregator`]: which member sites the child
/// link serves, and whether it leads straight to a site (leaf) or to a
/// nested aggregator (node).
struct ChildMeta {
    sites: Vec<u32>,
    leaf: bool,
}

/// The regional aggregator service: terminates the aggregate protocol
/// downward, fanning each [`Message::AggBroadcast`] /
/// [`Message::AggScatter`] out to its children (plain frames to leaf
/// sites, nested aggregate frames to sub-aggregators) through the
/// pool-parallel scatter path, and merges the children's outcomes into one
/// ascending [`Message::AggReplies`] frame upward.
///
/// The service is deliberately *stateless and generic*: it never inspects
/// tuple payloads, folds survival products, or tracks query progress.
/// [`Message::Tagged`] session frames are unwrapped, each downward child
/// frame is re-tagged with the same query id, and the merged reply goes up
/// plain — so one aggregator serves every concurrent session query, like a
/// site does. A [`Message::HealthProbe`] is answered by the aggregator
/// *itself* (its subtree's health is its own business until an operation
/// actually fails), which is what lets the session lifecycle quarantine an
/// aggregator exactly like a site: one missed ack degrades the whole
/// subtree as a unit. [`Message::Release`] is forwarded to every child so
/// per-query site state unwinds through the tree.
pub struct Aggregator {
    links: Vec<Box<dyn Link>>,
    meta: Vec<ChildMeta>,
}

impl Default for Aggregator {
    fn default() -> Self {
        Self::new()
    }
}

impl Aggregator {
    /// An aggregator with no children yet.
    pub fn new() -> Self {
        Aggregator { links: Vec::new(), meta: Vec::new() }
    }

    /// Adds a direct link to member site `site`.
    pub fn push_leaf(&mut self, site: u32, link: Box<dyn Link>) {
        self.links.push(link);
        self.meta.push(ChildMeta { sites: vec![site], leaf: true });
    }

    /// Adds a link to a nested aggregator serving `sites` (ascending).
    pub fn push_group(&mut self, sites: Vec<u32>, link: Box<dyn Link>) {
        debug_assert!(sites.windows(2).all(|w| w[0] < w[1]), "member sites ascend");
        self.links.push(link);
        self.meta.push(ChildMeta { sites, leaf: false });
    }

    /// Member sites across all children, ascending.
    pub fn members(&self) -> Vec<u32> {
        self.meta.iter().flat_map(|m| m.sites.iter().copied()).collect()
    }

    fn wrap(query_id: Option<u64>, msg: Message) -> Message {
        match query_id {
            Some(id) => Message::Tagged { query_id: id, inner: Box::new(msg) },
            None => msg,
        }
    }

    fn process(&mut self, msg: Message, query_id: Option<u64>) -> Message {
        match msg {
            Message::AggBroadcast { sites, inner } => {
                let mut requests = Vec::new();
                let mut addressed = Vec::new();
                for (c, meta) in self.meta.iter().enumerate() {
                    let subset: Vec<u32> = meta
                        .sites
                        .iter()
                        .copied()
                        .filter(|s| sites.binary_search(s).is_ok())
                        .collect();
                    if subset.is_empty() {
                        continue;
                    }
                    let downward = if meta.leaf {
                        (*inner).clone()
                    } else {
                        Message::AggBroadcast { sites: subset.clone(), inner: inner.clone() }
                    };
                    requests.push((c, Self::wrap(query_id, downward)));
                    addressed.push(subset);
                }
                self.merge(requests, addressed)
            }
            Message::AggScatter { parts } => {
                let mut per_child: Vec<Vec<(u32, Message)>> =
                    (0..self.meta.len()).map(|_| Vec::new()).collect();
                for (site, inner) in parts {
                    let Some(c) =
                        self.meta.iter().position(|m| m.sites.binary_search(&site).is_ok())
                    else {
                        // A part addressed outside this subtree: the frame
                        // is not ours to serve.
                        return Message::DecodeError;
                    };
                    per_child[c].push((site, inner));
                }
                let mut requests = Vec::new();
                let mut addressed = Vec::new();
                for (c, mut parts) in per_child.into_iter().enumerate() {
                    if parts.is_empty() {
                        continue;
                    }
                    parts.sort_by_key(|(site, _)| *site);
                    let sites: Vec<u32> = parts.iter().map(|(site, _)| *site).collect();
                    let downward = if self.meta[c].leaf {
                        debug_assert!(parts.len() == 1, "a leaf child is one site");
                        parts.pop().expect("non-empty").1
                    } else {
                        Message::AggScatter { parts }
                    };
                    requests.push((c, Self::wrap(query_id, downward)));
                    addressed.push(sites);
                }
                self.merge(requests, addressed)
            }
            // Plan phase: fan the request to every child and merge their
            // sketches into one frame. This is the only reply kind the
            // tree may legally combine — sketch merge (bucket adds,
            // register maxima) is associative and commutative, so any
            // merge order yields the root's sketch bit-for-bit, where a
            // survival-product fold must happen at the root in ascending
            // site order. Failed or sketchless children are simply absent
            // from the merge: the plan degrades, the answer cannot.
            Message::SketchRequest => {
                let requests: Vec<(usize, Message)> = (0..self.links.len())
                    .map(|c| (c, Self::wrap(query_id, Message::SketchRequest)))
                    .collect();
                let mut merged: Option<dsud_sketch::SiteSketch> = None;
                for (_, outcome) in crate::scatter(&mut self.links, requests) {
                    if let Ok(Message::Sketch(s)) = outcome {
                        match merged.as_mut() {
                            Some(m) => m.merge(&s),
                            None => merged = Some(*s),
                        }
                    }
                }
                match merged {
                    Some(s) => Message::Sketch(Box::new(s)),
                    None => Message::Ack,
                }
            }
            // The aggregator acks for itself: heartbeats probe the link to
            // this process, and quarantining it degrades the subtree as a
            // unit (the same granularity its operations fail at).
            Message::HealthProbe { nonce } => Message::HealthAck { nonce },
            Message::Release => {
                let downward = Self::wrap(query_id, Message::Release);
                let _ = crate::broadcast(&mut self.links, |_| true, &downward);
                Message::Ack
            }
            _ => Message::DecodeError,
        }
    }

    /// Fans `requests` out to the children (pool-parallel) and merges
    /// their outcomes into one ascending [`Message::AggReplies`]. A failed
    /// child link stands in for each of its member sites as an error
    /// entry, so the root sees per-site failures exactly where a flat run
    /// would.
    fn merge(&mut self, requests: Vec<(usize, Message)>, addressed: Vec<Vec<u32>>) -> Message {
        let replies = crate::scatter(&mut self.links, requests);
        let mut out: Vec<(u32, AggReply)> = Vec::new();
        for ((c, outcome), sites) in replies.into_iter().zip(addressed) {
            match outcome {
                Err(e) => {
                    for site in sites {
                        out.push((site, AggReply::Err(e.clone())));
                    }
                }
                Ok(reply) if self.meta[c].leaf => {
                    debug_assert!(sites.len() == 1, "a leaf child is one site");
                    out.push((sites[0], AggReply::Ok(Box::new(reply))));
                }
                Ok(Message::AggReplies { replies }) => out.extend(replies),
                Ok(_) => {
                    for site in sites {
                        out.push((site, AggReply::Err(LinkError::Malformed)));
                    }
                }
            }
        }
        debug_assert!(out.windows(2).all(|w| w[0].0 < w[1].0), "merged replies ascend");
        Message::AggReplies { replies: out }
    }
}

impl Service for Aggregator {
    fn handle(&mut self, msg: Message) -> Message {
        match msg {
            Message::Tagged { query_id, inner } => self.process(*inner, Some(query_id)),
            other => self.process(other, None),
        }
    }
}

/// A [`Link`] view of one member site through its group link: every
/// request rides a one-part [`Message::AggScatter`] and the single merged
/// reply entry is unwrapped transparently.
///
/// This is what keeps the session layer's per-site plumbing — update
/// injection, resync, maintenance bootstrap — topology-blind: those paths
/// build a `SiteRoute` over the site's (possibly multiplexed) group link
/// and keep indexing links by site exactly as in a flat deployment.
pub struct SiteRoute<L> {
    site: u32,
    inner: L,
}

impl<L: Link> SiteRoute<L> {
    /// Routes requests for `site` through `inner` (its group link).
    pub fn new(site: u32, inner: L) -> Self {
        SiteRoute { site, inner }
    }
}

impl<L: Link> Link for SiteRoute<L> {
    fn send(&mut self, msg: Message) -> Result<Ticket, LinkError> {
        self.inner.send(Message::AggScatter { parts: vec![(self.site, msg)] })
    }

    fn complete(&mut self, ticket: Ticket) -> Result<Message, LinkError> {
        let reply = self.inner.complete(ticket)?;
        unwrap_single(self.site, reply)
    }

    fn reconnect(&mut self) -> Result<(), LinkError> {
        self.inner.reconnect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BandwidthMeter, ChannelLink, FaultMode, FaultyLink, LocalLink};

    /// A stateful echo site: replies carry `(site, requests seen)` so any
    /// reordering, duplication, or dropped delivery changes the
    /// transcript.
    fn counting_site(site: u32) -> impl Service {
        let mut seen = 0u64;
        move |msg: Message| match msg {
            Message::Tagged { query_id, inner } => match *inner {
                Message::Release => Message::Ack,
                _ => {
                    seen += 1;
                    Message::SurvivalReply {
                        survival: (query_id * 1_000_000 + u64::from(site) * 1000 + seen) as f64,
                        pruned: 0,
                    }
                }
            },
            Message::Release => Message::Ack,
            Message::HealthProbe { nonce } => Message::HealthAck { nonce },
            _ => {
                seen += 1;
                Message::SurvivalReply {
                    survival: (u64::from(site) * 1000 + seen) as f64,
                    pruned: 0,
                }
            }
        }
    }

    /// Builds the physical links of `plan` over inline transports, with
    /// real [`Aggregator`] services on every internal node.
    fn build_links(plan: &FanPlan, meter: &BandwidthMeter) -> Vec<Box<dyn Link>> {
        fn link_for(node: &FanNode, meter: &BandwidthMeter) -> Box<dyn Link> {
            match node {
                FanNode::Leaf(site) => {
                    Box::new(LocalLink::new(counting_site(*site), meter.clone()))
                }
                FanNode::Node(children) => {
                    let mut agg = Aggregator::new();
                    for child in children {
                        // Child links live inside the aggregator process:
                        // their traffic never crosses the root link, so it
                        // gets a private meter.
                        let child_link = link_for(child, &BandwidthMeter::new());
                        match child {
                            FanNode::Leaf(site) => agg.push_leaf(*site, child_link),
                            FanNode::Node(_) => agg.push_group(child.members(), child_link),
                        }
                    }
                    Box::new(LocalLink::new(agg, meter.clone()))
                }
            }
        }
        plan.roots().iter().map(|node| link_for(node, meter)).collect()
    }

    /// A site whose sketch is a deterministic function of its id, so any
    /// lost, duplicated, or mis-merged plan frame changes the merge.
    fn sketch_site(site: u32) -> impl Service {
        fn reply(site: u32, msg: Message) -> Message {
            match msg {
                Message::Tagged { inner, .. } => reply(site, *inner),
                Message::SketchRequest => {
                    let mut s = dsud_sketch::SiteSketch::default();
                    for i in 0..3u64 {
                        s.record(
                            u64::from(site) * 100 + i,
                            0.05 + 0.07 * (f64::from(site) + i as f64),
                        );
                    }
                    Message::Sketch(Box::new(s))
                }
                _ => Message::Ack,
            }
        }
        move |msg: Message| reply(site, msg)
    }

    fn build_sketch_links(plan: &FanPlan, meter: &BandwidthMeter) -> Vec<Box<dyn Link>> {
        fn link_for(node: &FanNode, meter: &BandwidthMeter) -> Box<dyn Link> {
            match node {
                FanNode::Leaf(site) => Box::new(LocalLink::new(sketch_site(*site), meter.clone())),
                FanNode::Node(children) => {
                    let mut agg = Aggregator::new();
                    for child in children {
                        let child_link = link_for(child, &BandwidthMeter::new());
                        match child {
                            FanNode::Leaf(site) => agg.push_leaf(*site, child_link),
                            FanNode::Node(_) => agg.push_group(child.members(), child_link),
                        }
                    }
                    Box::new(LocalLink::new(agg, meter.clone()))
                }
            }
        }
        plan.roots().iter().map(|node| link_for(node, meter)).collect()
    }

    /// Plan-phase gather under the tree: every fanout must deliver, in at
    /// most `root_fanout` frames, sketches whose root-side merge equals
    /// the flat gather's merge exactly — the associativity the aggregator
    /// layer is allowed to exploit, made observable.
    #[test]
    fn tree_sketch_gather_merges_subtrees_associatively() {
        let meter = BandwidthMeter::new();
        let flat_plan = FanPlan::flat(9);
        let mut flat_links = build_sketch_links(&flat_plan, &meter);
        let mut fan = Fanout::tree(&mut flat_links, &flat_plan, Recorder::default());
        let flat_replies = fan.gather_sketches();
        assert_eq!(flat_replies.len(), 9, "flat: one sketch frame per site");
        let mut expect: Option<dsud_sketch::SiteSketch> = None;
        for r in flat_replies {
            let Ok(Message::Sketch(s)) = r else { panic!("flat site answers a sketch: {r:?}") };
            match expect.as_mut() {
                Some(m) => m.merge(&s),
                None => expect = Some(*s),
            }
        }
        let expect = expect.expect("nine sites produce a merged sketch");

        for fanout in [2usize, 4, 8] {
            let plan = FanPlan::tree(9, fanout);
            let mut links = build_sketch_links(&plan, &meter);
            let mut fan = Fanout::tree(&mut links, &plan, Recorder::default());
            let replies = fan.gather_sketches();
            assert_eq!(replies.len(), plan.root_fanout(), "tree:{fanout}: one frame per root link");
            let mut merged: Option<dsud_sketch::SiteSketch> = None;
            for r in replies {
                let Ok(Message::Sketch(s)) = r else {
                    panic!("tree:{fanout} root link answers a sketch: {r:?}")
                };
                match merged.as_mut() {
                    Some(m) => m.merge(&s),
                    None => merged = Some(*s),
                }
            }
            assert_eq!(merged.as_ref(), Some(&expect), "tree:{fanout} merge must equal flat");
        }
    }

    fn feedback() -> Message {
        use dsud_uncertain::{Probability, TupleId, UncertainTuple};
        let t =
            UncertainTuple::new(TupleId::new(0, 0), vec![1.0, 2.0], Probability::new(0.5).unwrap())
                .unwrap();
        Message::Feedback(crate::TupleMsg::new(&t, 0.25))
    }

    #[test]
    fn plans_have_the_advertised_shapes() {
        let flat = FanPlan::flat(8);
        assert_eq!((flat.depth(), flat.root_fanout(), flat.sites()), (0, 8, 8));
        assert!(flat.is_flat());

        // m <= fanout degenerates to flat.
        assert!(FanPlan::tree(4, 4).is_flat());

        // tree:4 at m=8 → two aggregators of four sites each.
        let two = FanPlan::tree(8, 4);
        assert_eq!((two.depth(), two.root_fanout()), (1, 2));
        assert_eq!(two.groups(), vec![vec![0, 1, 2, 3], vec![4, 5, 6, 7]]);

        // tree:4 at m=64 → two aggregation layers, root holds 4 links.
        let deep = FanPlan::tree(64, 4);
        assert_eq!((deep.depth(), deep.root_fanout()), (2, 4));
        let members: Vec<u32> = deep.groups().concat();
        assert_eq!(members, (0..64).collect::<Vec<u32>>());

        // auto at m=64 → one √m layer: 8 groups of 8.
        let auto = FanPlan::sqrt_auto(64);
        assert_eq!((auto.depth(), auto.root_fanout()), (1, 8));
        assert!(auto.groups().iter().all(|g| g.len() == 8));

        // Ragged division keeps every site exactly once, ascending.
        let ragged = FanPlan::tree(13, 4);
        assert_eq!(ragged.groups().concat(), (0..13).collect::<Vec<u32>>());
    }

    #[test]
    #[should_panic(expected = "merges nothing")]
    fn degenerate_fanout_panics() {
        let _ = FanPlan::tree(8, 1);
    }

    /// The heart of the tentpole: a tree fan-out must produce the exact
    /// flat transcript for broadcast, scatter, and per-site calls — same
    /// replies, same ascending order, with stateful sites proving each
    /// request was delivered exactly once.
    #[test]
    fn tree_fanout_matches_flat_transcripts() {
        let transcript = |plan: &FanPlan| {
            let meter = BandwidthMeter::new();
            let mut links = build_links(plan, &meter);
            let mut fan = Fanout::tree(&mut links, plan, Recorder::disabled());
            assert_eq!(fan.len(), 11);
            let mut log = Vec::new();
            log.extend(fan.broadcast(|_| true, &feedback()));
            log.extend(fan.broadcast(|site| site % 2 == 0, &feedback()));
            log.extend(fan.scatter(vec![
                (7, feedback()),
                (0, feedback()),
                (10, feedback()),
                (3, feedback()),
            ]));
            log.push((5, fan.call(5, feedback())));
            log.push((5, fan.call(5, feedback())));
            (log, meter.snapshot().total().messages)
        };
        let (flat_log, flat_frames) = transcript(&FanPlan::flat(11));
        for plan in [FanPlan::tree(11, 2), FanPlan::tree(11, 4), FanPlan::sqrt_auto(11)] {
            let (log, frames) = transcript(&plan);
            assert_eq!(log, flat_log, "plan {plan:?}");
            assert!(
                frames < flat_frames,
                "plan {plan:?} must cut root-link frames ({frames} vs flat {flat_frames})"
            );
        }
    }

    /// Pipelined single-site sends interleaved with group broadcasts on
    /// the same physical link: the FIFO drain must pair every op with its
    /// own reply even when completions come in a different order. The flat
    /// reference completes its sends *before* broadcasting (a flat link
    /// cannot carry a broadcast over an outstanding ticket — riding that
    /// out is exactly what the tree FIFO adds), but the per-site delivery
    /// order is identical, so the transcripts must match.
    #[test]
    fn pipelined_sends_survive_interleaved_broadcasts() {
        let reference = {
            let meter = BandwidthMeter::new();
            let plan = FanPlan::flat(4);
            let mut links = build_links(&plan, &meter);
            let mut fan = Fanout::tree(&mut links, &plan, Recorder::disabled());
            let t2 = fan.send(2, feedback()).unwrap();
            let t0 = fan.send(0, feedback()).unwrap();
            let r0 = fan.complete(0, t0).unwrap();
            let r2 = fan.complete(2, t2).unwrap();
            let bcast = fan.broadcast(|_| true, &feedback());
            (bcast, r0, r2)
        };
        let meter = BandwidthMeter::new();
        let plan = FanPlan::tree(4, 2);
        let mut links = build_links(&plan, &meter);
        let mut fan = Fanout::tree(&mut links, &plan, Recorder::disabled());
        // Two in-flight ops on the two groups, then a broadcast that rides
        // the same physical links, then out-of-order completion.
        let t2 = fan.send(2, feedback()).unwrap();
        let t0 = fan.send(0, feedback()).unwrap();
        let bcast = fan.broadcast(|_| true, &feedback());
        let r0 = fan.complete(0, t0).unwrap();
        let r2 = fan.complete(2, t2).unwrap();
        assert_eq!((bcast, r0, r2), reference);
    }

    /// A dead group link fans its error out to every member site, in
    /// reply position — the same shape a flat run reports per site.
    #[test]
    fn group_link_failure_covers_exactly_its_subtree() {
        let plan = FanPlan::tree(8, 4);
        let meter = BandwidthMeter::new();
        let mut links = build_links(&plan, &meter);
        // Replace group 1's link (sites 4..8) with one that drops
        // everything.
        links[1] = Box::new(FaultyLink::new(
            LocalLink::new(counting_site(99), BandwidthMeter::new()),
            FaultMode::Disconnect,
            0,
        ));
        let mut fan = Fanout::tree(&mut links, &plan, Recorder::disabled());
        let replies = fan.broadcast(|_| true, &feedback());
        assert_eq!(replies.len(), 8);
        for (site, reply) in replies {
            if site < 4 {
                assert!(reply.is_ok(), "site {site} is healthy");
            } else {
                assert_eq!(reply, Err(LinkError::Disconnected), "site {site} rides the dead link");
            }
        }
    }

    /// Root-side counters: merged frames count the deliveries the root
    /// link did *not* carry; fold ops count per-site replies folded out of
    /// aggregate frames.
    #[test]
    fn merge_counters_account_for_saved_frames() {
        let recorder = Recorder::enabled();
        let plan = FanPlan::tree(8, 4);
        let meter = BandwidthMeter::new();
        let mut links = build_links(&plan, &meter);
        let mut fan = Fanout::tree(&mut links, &plan, recorder.clone());
        fan.broadcast(|_| true, &feedback());
        // 8 logical deliveries over 2 root frames: 6 merged away.
        assert_eq!(recorder.counter(Counter::AggMergedFrames), 6);
        assert_eq!(recorder.counter(Counter::AggFoldOps), 8);
        let _ = fan.call(3, feedback());
        assert_eq!(recorder.counter(Counter::AggMergedFrames), 6, "single-site ops merge nothing");
        assert_eq!(recorder.counter(Counter::AggFoldOps), 9);
    }

    /// Session frames: a Tagged aggregate frame is unwrapped, children see
    /// re-tagged frames with the same query id, and the merged reply goes
    /// up plain.
    #[test]
    fn aggregator_retags_session_frames_per_child() {
        let plan = FanPlan::tree(4, 2);
        let meter = BandwidthMeter::new();
        let mut links = build_links(&plan, &meter);
        let frame = Message::Tagged {
            query_id: 7,
            inner: Box::new(Message::AggBroadcast {
                sites: vec![0, 1],
                inner: Box::new(feedback()),
            }),
        };
        let reply = links[0].call(frame).unwrap();
        match reply {
            Message::AggReplies { replies } => {
                assert_eq!(replies.len(), 2);
                for (expected_site, (site, entry)) in [0u32, 1].into_iter().zip(replies) {
                    assert_eq!(site, expected_site);
                    match entry.into_result().unwrap() {
                        // counting_site folds the query id into the reply:
                        // proof the tag reached the site.
                        Message::SurvivalReply { survival, .. } => {
                            assert_eq!(survival, (7_000_000 + u64::from(site) * 1000 + 1) as f64);
                        }
                        other => panic!("unexpected site reply {other:?}"),
                    }
                }
            }
            other => panic!("expected merged replies, got {other:?}"),
        }
    }

    #[test]
    fn aggregator_self_acks_health_probes_and_forwards_release() {
        let plan = FanPlan::tree(4, 2);
        let meter = BandwidthMeter::new();
        let mut links = build_links(&plan, &meter);
        assert_eq!(
            links[0].call(Message::HealthProbe { nonce: 42 }).unwrap(),
            Message::HealthAck { nonce: 42 }
        );
        assert_eq!(
            links[0]
                .call(Message::Tagged { query_id: 3, inner: Box::new(Message::Release) })
                .unwrap(),
            Message::Ack
        );
        // Unexpected plain traffic is rejected, not crashed on.
        assert_eq!(links[0].call(Message::RequestNext).unwrap(), Message::DecodeError);
    }

    #[test]
    fn site_route_is_a_transparent_per_site_link() {
        let plan = FanPlan::tree(4, 2);
        let meter = BandwidthMeter::new();
        // SiteRoute wraps an owned link; exercise it over group 0 / site 1.
        let mut links = build_links(&plan, &meter);
        let group0 = links.remove(0);
        let mut route = SiteRoute::new(1, group0);
        match route.call(feedback()).unwrap() {
            Message::SurvivalReply { survival, .. } => assert_eq!(survival, 1001.0),
            other => panic!("unexpected {other:?}"),
        }
        // Split-phase ops work too.
        let t = route.send(feedback()).unwrap();
        assert!(matches!(route.complete(t).unwrap(), Message::SurvivalReply { .. }));
    }

    /// The aggregator works over threaded transports exactly as inline:
    /// the worker thread drives `handle_frame`, so aggregate frames round-
    /// trip through their wire encoding.
    #[test]
    fn aggregator_round_trips_over_channel_transport() {
        let meter = BandwidthMeter::new();
        let mut agg = Aggregator::new();
        for site in 0..3u32 {
            agg.push_leaf(
                site,
                Box::new(ChannelLink::spawn(counting_site(site), BandwidthMeter::new())),
            );
        }
        let mut link: Box<dyn Link> = Box::new(ChannelLink::spawn(agg, meter.clone()));
        let reply = link
            .call(Message::AggBroadcast { sites: vec![0, 1, 2], inner: Box::new(feedback()) })
            .unwrap();
        match reply {
            Message::AggReplies { replies } => {
                let sites: Vec<u32> = replies.iter().map(|(s, _)| *s).collect();
                assert_eq!(sites, vec![0, 1, 2]);
            }
            other => panic!("expected merged replies, got {other:?}"),
        }
    }
}
