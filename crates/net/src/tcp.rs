//! TCP transport: sites behind real sockets.
//!
//! The in-process transports are ideal for experiments, but a system a
//! deployment would adopt must actually cross a network. This module
//! speaks the same binary [`Message`] encoding over TCP
//! with a minimal length-prefixed framing (4-byte big-endian length, then
//! the message bytes), so a site served by [`serve_connection`] is
//! indistinguishable from one behind a [`LocalLink`](crate::LocalLink) —
//! the equivalence is asserted by the integration tests.
//!
//! # Example
//!
//! ```
//! use dsud_net::{tcp, BandwidthMeter, Link, Message, Service};
//!
//! struct Echo;
//! impl Service for Echo {
//!     fn handle(&mut self, msg: Message) -> Message {
//!         match msg {
//!             Message::RequestNext => Message::Upload(None),
//!             _ => Message::Ack,
//!         }
//!     }
//! }
//!
//! # fn main() -> std::io::Result<()> {
//! let (addr, handle) = tcp::spawn_site(Echo)?;
//! let meter = BandwidthMeter::new();
//! let mut link = tcp::TcpLink::connect(addr, meter)?;
//! assert!(matches!(link.call(Message::RequestNext), Message::Upload(None)));
//! drop(link); // closes the connection; the server thread exits
//! handle.join().expect("server thread exits cleanly")?;
//! # Ok(())
//! # }
//! ```

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::thread::JoinHandle;

use bytes::Bytes;

use crate::{BandwidthMeter, Link, Message, Service};

/// Writes one length-prefixed frame.
fn write_frame(stream: &mut TcpStream, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame too large"))?;
    stream.write_all(&len.to_be_bytes())?;
    stream.write_all(payload)?;
    stream.flush()
}

/// Reads one length-prefixed frame; `Ok(None)` on a clean end-of-stream at
/// a frame boundary.
fn read_frame(stream: &mut TcpStream) -> io::Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    match stream.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "frame exceeds limit"));
    }
    let mut payload = vec![0u8; len];
    stream.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// Upper bound on a frame (a ReplicaSync of thousands of wide tuples fits
/// comfortably; anything larger is a protocol error, not a workload).
const MAX_FRAME: usize = 64 << 20;

/// A metered request/response link to a site across TCP.
#[derive(Debug)]
pub struct TcpLink {
    stream: TcpStream,
    meter: BandwidthMeter,
    in_flight: bool,
}

impl TcpLink {
    /// Connects to a site server.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn connect(addr: SocketAddr, meter: BandwidthMeter) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(TcpLink { stream, meter, in_flight: false })
    }
}

impl Link for TcpLink {
    /// # Panics
    ///
    /// Panics if the connection drops mid-query or the peer sends a
    /// malformed frame — the simulated deployments in this workspace treat
    /// transport loss as a fatal harness bug, mirroring the other
    /// transports.
    fn call(&mut self, msg: Message) -> Message {
        self.begin(msg);
        self.complete()
    }

    fn begin(&mut self, msg: Message) {
        assert!(!self.in_flight, "request already outstanding");
        self.meter.record(&msg);
        write_frame(&mut self.stream, &msg.encode()).expect("site connection is alive");
        self.in_flight = true;
    }

    fn complete(&mut self) -> Message {
        assert!(self.in_flight, "no outstanding request");
        self.in_flight = false;
        let payload = read_frame(&mut self.stream)
            .expect("site connection is alive")
            .expect("site replied before closing");
        let reply = Message::decode(Bytes::from(payload)).expect("well-formed reply frame");
        self.meter.record(&reply);
        reply
    }
}

/// Serves one client connection until it closes: reads a request frame,
/// hands it to the service, writes the reply frame.
///
/// # Errors
///
/// Propagates socket errors and reports malformed frames as
/// [`io::ErrorKind::InvalidData`].
pub fn serve_connection<S: Service>(mut stream: TcpStream, service: &mut S) -> io::Result<()> {
    stream.set_nodelay(true)?;
    while let Some(payload) = read_frame(&mut stream)? {
        let msg = Message::decode(Bytes::from(payload))
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "malformed frame"))?;
        let reply = service.handle(msg);
        write_frame(&mut stream, &reply.encode())?;
    }
    Ok(())
}

/// Binds a loopback listener, spawns a thread serving exactly one client
/// connection with `service`, and returns the address plus the server
/// thread handle (which yields once the client disconnects).
///
/// # Errors
///
/// Propagates bind failures.
pub fn spawn_site<S: Service + 'static>(
    mut service: S,
) -> io::Result<(SocketAddr, JoinHandle<io::Result<()>>)> {
    let listener = TcpListener::bind(("127.0.0.1", 0))?;
    let addr = listener.local_addr()?;
    let handle = std::thread::spawn(move || {
        let (stream, _) = listener.accept()?;
        serve_connection(stream, &mut service)
    });
    Ok((addr, handle))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TupleMsg;
    use dsud_uncertain::{Probability, TupleId, UncertainTuple};

    fn echo_service() -> impl Service {
        |msg: Message| match msg {
            Message::Feedback(t) => Message::SurvivalReply { survival: t.local_prob, pruned: 1 },
            Message::RequestNext => Message::Upload(None),
            _ => Message::Ack,
        }
    }

    fn feedback(local_prob: f64) -> Message {
        let t = UncertainTuple::new(
            TupleId::new(0, 0),
            vec![1.0, 2.0, 3.0],
            Probability::new(0.5).unwrap(),
        )
        .unwrap();
        Message::Feedback(TupleMsg::new(&t, local_prob))
    }

    #[test]
    fn tcp_round_trips_and_meters() {
        let (addr, handle) = spawn_site(echo_service()).unwrap();
        let meter = BandwidthMeter::new();
        let mut link = TcpLink::connect(addr, meter.clone()).unwrap();
        for i in 1..=20 {
            let reply = link.call(feedback(i as f64 / 100.0));
            assert_eq!(reply, Message::SurvivalReply { survival: i as f64 / 100.0, pruned: 1 });
        }
        drop(link);
        handle.join().unwrap().unwrap();
        let snap = meter.snapshot();
        assert_eq!(snap.feedback.messages, 20);
        assert_eq!(snap.reply.messages, 20);
        assert_eq!(snap.tuples_transmitted(), 20);
    }

    #[test]
    fn tcp_metering_matches_local_link() {
        let (addr, handle) = spawn_site(echo_service()).unwrap();
        let tcp_meter = BandwidthMeter::new();
        let mut tcp = TcpLink::connect(addr, tcp_meter.clone()).unwrap();
        let local_meter = BandwidthMeter::new();
        let mut local = crate::LocalLink::new(echo_service(), local_meter.clone());
        for _ in 0..5 {
            tcp.call(Message::RequestNext);
            local.call(Message::RequestNext);
        }
        drop(tcp);
        handle.join().unwrap().unwrap();
        assert_eq!(tcp_meter.snapshot(), local_meter.snapshot());
    }

    #[test]
    fn frame_roundtrip_handles_large_payloads() {
        let (addr, handle) = spawn_site(|_msg: Message| {
            // Reply with a large ReplicaSync.
            let t = UncertainTuple::new(
                TupleId::new(0, 0),
                vec![1.0; 16],
                Probability::new(0.5).unwrap(),
            )
            .unwrap();
            Message::ReplicaSync(vec![TupleMsg::new(&t, 0.5); 5_000])
        })
        .unwrap();
        let meter = BandwidthMeter::new();
        let mut link = TcpLink::connect(addr, meter).unwrap();
        match link.call(Message::RequestNext) {
            Message::ReplicaSync(tuples) => assert_eq!(tuples.len(), 5_000),
            other => panic!("unexpected {other:?}"),
        }
        drop(link);
        handle.join().unwrap().unwrap();
    }
}
