//! TCP transport: sites behind real sockets.
//!
//! The in-process transports are ideal for experiments, but a system a
//! deployment would adopt must actually cross a network. This module
//! speaks the same binary [`Message`] encoding over TCP
//! with a minimal length-prefixed framing (4-byte big-endian length, then
//! the message bytes), so a site served by [`serve_connection`] is
//! indistinguishable from one behind a [`LocalLink`](crate::LocalLink) —
//! the equivalence is asserted by the integration tests.
//!
//! Failure handling: reads observe the [`LinkConfig::request_timeout`]
//! deadline via `set_read_timeout`, every operation returns
//! [`LinkError`] values instead of panicking, and a [`TcpLink`] remembers
//! its server's address so [`Link::reconnect`] can re-dial after a drop —
//! which works because [`spawn_site`] accepts connections in a loop until
//! its [`SiteServer`] handle is shut down.
//!
//! # Example
//!
//! ```
//! use dsud_net::{tcp, BandwidthMeter, Link, Message, Service};
//!
//! struct Echo;
//! impl Service for Echo {
//!     fn handle(&mut self, msg: Message) -> Message {
//!         match msg {
//!             Message::RequestNext => Message::Upload(None),
//!             _ => Message::Ack,
//!         }
//!     }
//! }
//!
//! # fn main() -> std::io::Result<()> {
//! let server = tcp::spawn_site(Echo)?;
//! let meter = BandwidthMeter::new();
//! let mut link = tcp::TcpLink::connect(server.addr(), meter)?;
//! assert_eq!(link.call(Message::RequestNext), Ok(Message::Upload(None)));
//! drop(link); // closes the connection; the server waits for the next one
//! server.shutdown()?;
//! # Ok(())
//! # }
//! ```

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use bytes::BytesMut;

use crate::transport::TicketLedger;
use crate::{BandwidthMeter, Link, LinkConfig, LinkError, Message, Service, Ticket};

/// Writes one length-prefixed frame.
fn write_frame(stream: &mut TcpStream, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame too large"))?;
    stream.write_all(&len.to_be_bytes())?;
    stream.write_all(payload)?;
    stream.flush()
}

/// Reads one length-prefixed frame into a caller-owned buffer (resized to
/// the payload length); `Ok(false)` on a clean end-of-stream at a frame
/// boundary. Reusing the buffer keeps long request/reply conversations —
/// and batched feedback rounds in particular — allocation-free per frame.
fn read_frame_into(stream: &mut TcpStream, payload: &mut Vec<u8>) -> io::Result<bool> {
    let mut len_buf = [0u8; 4];
    match stream.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(false),
        Err(e) => return Err(e),
    }
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "frame exceeds limit"));
    }
    payload.clear();
    payload.resize(len, 0);
    stream.read_exact(payload)?;
    Ok(true)
}

/// Reads one length-prefixed frame; `Ok(None)` on a clean end-of-stream at
/// a frame boundary.
#[cfg(test)]
fn read_frame(stream: &mut TcpStream) -> io::Result<Option<Vec<u8>>> {
    let mut payload = Vec::new();
    Ok(read_frame_into(stream, &mut payload)?.then_some(payload))
}

/// Upper bound on a frame (a ReplicaSync of thousands of wide tuples fits
/// comfortably; anything larger is a protocol error, not a workload).
const MAX_FRAME: usize = 64 << 20;

/// A metered request/response link to a site across TCP.
///
/// The link stores its server's [`SocketAddr`] and [`LinkConfig`], so after
/// any failure [`Link::reconnect`] re-dials and the next request goes out
/// on a fresh connection — no state beyond the socket needs restoring,
/// because the protocol is request/response and the server keeps the site
/// state across connections.
#[derive(Debug)]
pub struct TcpLink {
    stream: Option<TcpStream>,
    addr: SocketAddr,
    config: LinkConfig,
    meter: BandwidthMeter,
    /// Outstanding-frame queue: frames written but not yet answered, in
    /// wire order. TCP preserves ordering, so the `k`-th reply frame on
    /// the stream answers the `k`-th outstanding request.
    tickets: TicketLedger,
    /// Reusable encode buffer: frames are serialized here, written, and the
    /// allocation kept for the next request.
    send_buf: BytesMut,
    /// Reusable receive buffer for reply payloads.
    recv_buf: Vec<u8>,
}

impl TcpLink {
    /// Connects to a site server with the default [`LinkConfig`].
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn connect(addr: SocketAddr, meter: BandwidthMeter) -> io::Result<Self> {
        Self::connect_with(addr, meter, LinkConfig::default())
    }

    /// Connects to a site server with an explicit deadline configuration.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn connect_with(
        addr: SocketAddr,
        meter: BandwidthMeter,
        config: LinkConfig,
    ) -> io::Result<Self> {
        let stream = Self::dial(addr, config)?;
        Ok(TcpLink {
            stream: Some(stream),
            addr,
            config,
            meter,
            tickets: TicketLedger::default(),
            send_buf: BytesMut::new(),
            recv_buf: Vec::new(),
        })
    }

    fn dial(addr: SocketAddr, config: LinkConfig) -> io::Result<TcpStream> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(config.request_timeout))?;
        Ok(stream)
    }

    /// The server address this link (re)connects to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Drops the connection so the next operation fails (or reconnects)
    /// instead of reading a reply that no longer matches a request.
    fn poison(&mut self) {
        self.stream = None;
    }
}

impl Link for TcpLink {
    fn send(&mut self, msg: Message) -> Result<Ticket, LinkError> {
        msg.encode_into(&mut self.send_buf);
        let Some(stream) = self.stream.as_mut() else {
            return Err(LinkError::Disconnected);
        };
        if let Err(e) = write_frame(stream, &self.send_buf) {
            self.poison();
            return Err(e.into());
        }
        self.meter.record(&msg);
        Ok(self.tickets.issue())
    }

    fn complete(&mut self, ticket: Ticket) -> Result<Message, LinkError> {
        self.tickets.redeem(ticket);
        let Some(stream) = self.stream.as_mut() else {
            // The stream was poisoned (by an earlier failed completion or a
            // failed send); every ticket it still owed is a loss.
            return Err(LinkError::Disconnected);
        };
        match read_frame_into(stream, &mut self.recv_buf) {
            Ok(true) => {}
            // Clean EOF mid-request: the site closed on us.
            Ok(false) => {
                self.poison();
                return Err(LinkError::Disconnected);
            }
            Err(e) => {
                // After any read failure — a timeout included — the stream
                // position no longer lines up with request boundaries; a
                // late reply would be mistaken for the next one. Force a
                // reconnect before reuse.
                self.poison();
                return Err(e.into());
            }
        }
        let reply = match crate::transport::decode_reply_timed(&self.meter, &self.recv_buf) {
            Some(reply) => reply,
            None => {
                self.poison();
                return Err(LinkError::Malformed);
            }
        };
        if reply == Message::DecodeError {
            // The site could not decode our request; the round-trip failed
            // but the connection itself is still framed correctly.
            return Err(LinkError::Malformed);
        }
        self.meter.record(&reply);
        Ok(reply)
    }

    fn reconnect(&mut self) -> Result<(), LinkError> {
        // A fresh connection shares no framing state with the old one:
        // abandon every outstanding ticket along with the old stream.
        self.tickets.reset();
        self.stream = Some(Self::dial(self.addr, self.config)?);
        Ok(())
    }
}

/// Serves one client connection until it closes: reads a request frame,
/// hands it to the service, writes the reply frame.
///
/// A frame that does not decode is answered with [`Message::DecodeError`]
/// (the client surfaces it as [`LinkError::Malformed`]) instead of killing
/// the connection — one corrupt request must not take the site down.
///
/// # Errors
///
/// Propagates socket errors.
pub fn serve_connection<S: Service>(mut stream: TcpStream, service: &mut S) -> io::Result<()> {
    stream.set_nodelay(true)?;
    let mut recv_buf = Vec::new();
    let mut send_buf = BytesMut::new();
    while read_frame_into(&mut stream, &mut recv_buf)? {
        // `handle_frame` lets the service answer columnar bulk frames
        // straight from the borrowed request bytes (decode-error replies
        // included in its contract), reusing one send buffer per client.
        service.handle_frame(&recv_buf, &mut send_buf);
        write_frame(&mut stream, &send_buf)?;
    }
    Ok(())
}

/// How often a server-side connection loop re-checks the shutdown flag
/// while waiting for the next request.
const STOP_POLL: std::time::Duration = std::time::Duration::from_millis(50);

/// Like [`serve_connection`], but abandons the connection promptly when
/// `stop` is raised, so a [`SiteServer`] can shut down even while a client
/// is connected. Reads are structured so the poll timeout can never split
/// a frame: the 4-byte header is only consumed once it is fully buffered
/// (via `peek`), and payload reads resume across timeouts.
fn serve_client<S: Service>(
    stream: &mut TcpStream,
    service: &mut S,
    stop: &AtomicBool,
) -> io::Result<()> {
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(STOP_POLL))?;
    let mut payload = Vec::new();
    let mut send_buf = BytesMut::new();
    loop {
        // Wait until a whole header is buffered (or EOF / stop).
        let mut hdr = [0u8; 4];
        loop {
            if stop.load(Ordering::SeqCst) {
                return Ok(());
            }
            match stream.peek(&mut hdr) {
                Ok(0) => return Ok(()),     // clean end-of-stream
                Ok(n) if n < 4 => continue, // partial header still in flight
                Ok(_) => break,
                Err(e)
                    if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) =>
                {
                    continue
                }
                Err(e) => return Err(e),
            }
        }
        stream.read_exact(&mut hdr)?; // fully buffered: cannot block
        let len = u32::from_be_bytes(hdr) as usize;
        if len > MAX_FRAME {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "frame exceeds limit"));
        }
        payload.clear();
        payload.resize(len, 0);
        let mut filled = 0;
        while filled < len {
            match stream.read(&mut payload[filled..]) {
                Ok(0) => return Err(io::ErrorKind::UnexpectedEof.into()),
                Ok(n) => filled += n,
                Err(e)
                    if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) =>
                {
                    if stop.load(Ordering::SeqCst) {
                        return Ok(());
                    }
                }
                Err(e) => return Err(e),
            }
        }
        service.handle_frame(&payload, &mut send_buf);
        write_frame(stream, &send_buf)?;
    }
}

/// Handle onto a running site server spawned by [`spawn_site`].
///
/// The server accepts connections in a loop — serving one client at a time,
/// across reconnects — until [`SiteServer::shutdown`] is called (or the
/// handle is dropped). Site state lives in the [`Service`] inside the
/// server thread, so it survives client reconnects.
#[derive(Debug)]
pub struct SiteServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<io::Result<()>>>,
}

impl SiteServer {
    /// The loopback address clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, waits for the server thread to exit, and reports
    /// how it ended.
    ///
    /// # Errors
    ///
    /// Returns the listener's accept error if the thread died on one, or
    /// an error if the service panicked.
    pub fn shutdown(mut self) -> io::Result<()> {
        self.stop_and_join()
    }

    fn stop_and_join(&mut self) -> io::Result<()> {
        let Some(handle) = self.handle.take() else {
            return Ok(());
        };
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the (possibly) pending accept with a throwaway
        // connection; if the thread is already gone this simply fails.
        let _ = TcpStream::connect(self.addr);
        match handle.join() {
            Ok(result) => result,
            Err(_) => Err(io::Error::other("site server thread panicked")),
        }
    }
}

impl Drop for SiteServer {
    fn drop(&mut self) {
        let _ = self.stop_and_join();
    }
}

/// Binds a loopback listener and spawns a thread serving client
/// connections with `service`, one at a time, until the returned
/// [`SiteServer`] is shut down. A client disconnect (clean or not) returns
/// the server to `accept`, so a [`TcpLink::reconnect`] finds the site — and
/// its state — still there.
///
/// # Errors
///
/// Propagates bind failures.
pub fn spawn_site<S: Service + 'static>(mut service: S) -> io::Result<SiteServer> {
    let listener = TcpListener::bind(("127.0.0.1", 0))?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let thread_stop = Arc::clone(&stop);
    let handle = std::thread::spawn(move || loop {
        let (mut stream, _) = listener.accept()?;
        if thread_stop.load(Ordering::SeqCst) {
            return Ok(());
        }
        // A connection-level error (reset, aborted mid-frame) ends this
        // client but not the site; the next accept serves the reconnect.
        let _ = serve_client(&mut stream, &mut service, &thread_stop);
        if thread_stop.load(Ordering::SeqCst) {
            return Ok(());
        }
    });
    Ok(SiteServer { addr, stop, handle: Some(handle) })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FaultMode, FaultyLink, RetryLink, TupleMsg};
    use bytes::Bytes;
    use dsud_uncertain::{Probability, TupleId, UncertainTuple};
    use std::time::Duration;

    fn echo_service() -> impl Service {
        |msg: Message| match msg {
            Message::Feedback(t) => Message::SurvivalReply { survival: t.local_prob, pruned: 1 },
            Message::RequestNext => Message::Upload(None),
            _ => Message::Ack,
        }
    }

    fn feedback(local_prob: f64) -> Message {
        let t = UncertainTuple::new(
            TupleId::new(0, 0),
            vec![1.0, 2.0, 3.0],
            Probability::new(0.5).unwrap(),
        )
        .unwrap();
        Message::Feedback(TupleMsg::new(&t, local_prob))
    }

    #[test]
    fn tcp_round_trips_and_meters() {
        let server = spawn_site(echo_service()).unwrap();
        let meter = BandwidthMeter::new();
        let mut link = TcpLink::connect(server.addr(), meter.clone()).unwrap();
        for i in 1..=20 {
            let reply = link.call(feedback(i as f64 / 100.0)).unwrap();
            assert_eq!(reply, Message::SurvivalReply { survival: i as f64 / 100.0, pruned: 1 });
        }
        drop(link);
        server.shutdown().unwrap();
        let snap = meter.snapshot();
        assert_eq!(snap.feedback.messages, 20);
        assert_eq!(snap.reply.messages, 20);
        assert_eq!(snap.tuples_transmitted(), 20);
    }

    #[test]
    fn tcp_metering_matches_local_link() {
        let server = spawn_site(echo_service()).unwrap();
        let tcp_meter = BandwidthMeter::new();
        let mut tcp = TcpLink::connect(server.addr(), tcp_meter.clone()).unwrap();
        let local_meter = BandwidthMeter::new();
        let mut local = crate::LocalLink::new(echo_service(), local_meter.clone());
        for _ in 0..5 {
            tcp.call(Message::RequestNext).unwrap();
            local.call(Message::RequestNext).unwrap();
        }
        drop(tcp);
        server.shutdown().unwrap();
        assert_eq!(tcp_meter.snapshot(), local_meter.snapshot());
    }

    #[test]
    fn frame_roundtrip_handles_large_payloads() {
        let server = spawn_site(|_msg: Message| {
            // Reply with a large ReplicaSync.
            let t = UncertainTuple::new(
                TupleId::new(0, 0),
                vec![1.0; 16],
                Probability::new(0.5).unwrap(),
            )
            .unwrap();
            Message::ReplicaSync(vec![TupleMsg::new(&t, 0.5); 5_000])
        })
        .unwrap();
        let meter = BandwidthMeter::new();
        let mut link = TcpLink::connect(server.addr(), meter).unwrap();
        match link.call(Message::RequestNext).unwrap() {
            Message::ReplicaSync(tuples) => assert_eq!(tuples.len(), 5_000),
            other => panic!("unexpected {other:?}"),
        }
        drop(link);
        server.shutdown().unwrap();
    }

    #[test]
    fn server_survives_client_reconnects_and_keeps_state() {
        // A stateful service: replies with how many requests it has seen.
        let server = spawn_site({
            let mut seen = 0u64;
            move |_msg: Message| {
                seen += 1;
                Message::SurvivalReply { survival: seen as f64, pruned: 0 }
            }
        })
        .unwrap();
        let meter = BandwidthMeter::new();
        let mut link = TcpLink::connect(server.addr(), meter.clone()).unwrap();
        assert_eq!(
            link.call(Message::RequestNext),
            Ok(Message::SurvivalReply { survival: 1.0, pruned: 0 })
        );
        drop(link);
        // A fresh connection reaches the same site state.
        let mut link = TcpLink::connect(server.addr(), meter).unwrap();
        assert_eq!(
            link.call(Message::RequestNext),
            Ok(Message::SurvivalReply { survival: 2.0, pruned: 0 })
        );
        drop(link);
        server.shutdown().unwrap();
    }

    #[test]
    fn pipelined_requests_round_trip_in_order() {
        // Several frames on the wire at once: the k-th reply answers the
        // k-th outstanding request, so a stateful site proves ordering.
        let server = spawn_site({
            let mut seen = 0u64;
            move |_msg: Message| {
                seen += 1;
                Message::SurvivalReply { survival: seen as f64, pruned: 0 }
            }
        })
        .unwrap();
        let meter = BandwidthMeter::new();
        let mut link = TcpLink::connect(server.addr(), meter).unwrap();
        let tickets: Vec<_> = (0..4).map(|_| link.send(Message::RequestNext).unwrap()).collect();
        for (k, ticket) in tickets.into_iter().enumerate() {
            assert_eq!(
                link.complete(ticket),
                Ok(Message::SurvivalReply { survival: (k + 1) as f64, pruned: 0 })
            );
        }
        drop(link);
        server.shutdown().unwrap();
    }

    #[test]
    fn poisoned_stream_fails_every_outstanding_ticket() {
        let server = spawn_site(echo_service()).unwrap();
        let meter = BandwidthMeter::new();
        let mut link = TcpLink::connect(server.addr(), meter).unwrap();
        let first = link.send(Message::RequestNext).unwrap();
        let second = link.send(Message::RequestNext).unwrap();
        link.poison(); // simulate a read failure mid-window
        assert_eq!(link.complete(first), Err(LinkError::Disconnected));
        assert_eq!(link.complete(second), Err(LinkError::Disconnected));
        // A reconnect restores service on a fresh stream.
        link.reconnect().unwrap();
        assert_eq!(link.call(Message::RequestNext), Ok(Message::Upload(None)));
        drop(link);
        server.shutdown().unwrap();
    }

    #[test]
    fn explicit_reconnect_restores_a_poisoned_link() {
        let server = spawn_site(echo_service()).unwrap();
        let meter = BandwidthMeter::new();
        let mut link = TcpLink::connect(server.addr(), meter).unwrap();
        assert!(link.call(Message::RequestNext).is_ok());
        link.poison(); // simulate a broken connection
        assert_eq!(link.call(Message::RequestNext), Err(LinkError::Disconnected));
        link.reconnect().unwrap();
        assert_eq!(link.call(Message::RequestNext), Ok(Message::Upload(None)));
        drop(link);
        server.shutdown().unwrap();
    }

    #[test]
    fn read_deadline_fires_on_a_stalled_site() {
        let server = spawn_site(|msg: Message| {
            if matches!(msg, Message::RequestNext) {
                std::thread::sleep(Duration::from_millis(300));
            }
            Message::Ack
        })
        .unwrap();
        let meter = BandwidthMeter::new();
        let config = LinkConfig {
            request_timeout: Duration::from_millis(50),
            retry_budget: 0,
            backoff: Duration::ZERO,
        };
        let mut link = TcpLink::connect_with(server.addr(), meter, config).unwrap();
        let started = std::time::Instant::now();
        assert_eq!(link.call(Message::RequestNext), Err(LinkError::Timeout));
        assert!(started.elapsed() < Duration::from_millis(250), "deadline must bound the wait");
        drop(link);
        server.shutdown().unwrap();
    }

    #[test]
    fn dead_server_yields_disconnected_not_a_panic() {
        let server = spawn_site(echo_service()).unwrap();
        let meter = BandwidthMeter::new();
        let mut link = TcpLink::connect(server.addr(), meter).unwrap();
        assert!(link.call(Message::RequestNext).is_ok());
        server.shutdown().unwrap();
        // The next round-trip fails with a typed error on every path.
        let mut failed = false;
        for _ in 0..3 {
            if link.call(Message::RequestNext).is_err() {
                failed = true;
                break;
            }
        }
        assert!(failed, "a killed server must surface as a link error");
        assert!(link.reconnect().is_err(), "nothing is listening anymore");
    }

    #[test]
    fn retry_link_rides_out_a_tcp_stall() {
        // The service stalls once, longer than the request deadline; a
        // RetryLink with enough budget reconnects and recovers the exact
        // answer, because the swallowed request never mutated site state.
        let server = spawn_site({
            let mut first = true;
            move |msg: Message| {
                if first && matches!(msg, Message::RequestNext) {
                    first = false;
                    std::thread::sleep(Duration::from_millis(250));
                }
                match msg {
                    Message::RequestNext => Message::Upload(None),
                    _ => Message::Ack,
                }
            }
        })
        .unwrap();
        let meter = BandwidthMeter::new();
        let config = LinkConfig {
            request_timeout: Duration::from_millis(100),
            retry_budget: 5,
            backoff: Duration::from_millis(20),
        };
        let tcp = TcpLink::connect_with(server.addr(), meter, config).unwrap();
        let mut link = RetryLink::new(tcp, config);
        assert_eq!(link.call(Message::RequestNext), Ok(Message::Upload(None)));
        let health = link.health().snapshot();
        assert!(health.retries >= 1, "the stall must have forced a retry");
        drop(link);
        server.shutdown().unwrap();
    }

    #[test]
    fn malformed_request_gets_a_decode_error_reply_not_a_dead_site() {
        let server = spawn_site(echo_service()).unwrap();
        // Speak the framing by hand to deliver a corrupt payload.
        let mut raw = TcpStream::connect(server.addr()).unwrap();
        raw.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let garbage = [0xFFu8, 0x01, 0x02];
        raw.write_all(&(garbage.len() as u32).to_be_bytes()).unwrap();
        raw.write_all(&garbage).unwrap();
        raw.flush().unwrap();
        let mut stream_ref = raw.try_clone().unwrap();
        let payload = read_frame(&mut stream_ref).unwrap().expect("site replies");
        assert_eq!(Message::decode(Bytes::from(payload)), Some(Message::DecodeError));
        // The same connection still serves well-formed requests.
        write_frame(&mut raw, &Message::RequestNext.encode()).unwrap();
        let payload = read_frame(&mut stream_ref).unwrap().expect("site replies");
        assert_eq!(Message::decode(Bytes::from(payload)), Some(Message::Upload(None)));
        drop(raw);
        drop(stream_ref);
        server.shutdown().unwrap();
    }

    #[test]
    fn faulty_tcp_stack_reports_typed_errors() {
        // FaultyLink scheduling works identically over a real socket.
        let server = spawn_site(echo_service()).unwrap();
        let meter = BandwidthMeter::new();
        let tcp = TcpLink::connect(server.addr(), meter).unwrap();
        let mut link = FaultyLink::new(tcp, FaultMode::Disconnect, 2);
        assert!(link.call(Message::RequestNext).is_ok());
        assert!(link.call(Message::RequestNext).is_ok());
        assert_eq!(link.call(Message::RequestNext), Err(LinkError::Disconnected));
        drop(link);
        server.shutdown().unwrap();
    }
}
