//! Wire protocol of the DSUD/e-DSUD server–site conversation: the tuple
//! quaternion `⟨i, j, P(t_ij), P_sky(t_ij, D_i)⟩` of Section 5.1, the
//! request/reply [`Message`] variants for upload, feedback, expunge, and
//! maintenance, and their binary encoding used for byte accounting.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use serde::{Deserialize, Serialize};

use dsud_uncertain::{Probability, SubspaceMask, TupleId, UncertainTuple};

use crate::LinkError;

/// One per-site outcome inside a [`Message::AggReplies`] frame: either the
/// member site's own reply or the child-link error that stands in for it.
/// An error entry lets the root quarantine exactly the failed site while
/// its siblings' replies in the same frame stay usable.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AggReply {
    /// The member site answered; this is its reply verbatim.
    Ok(Box<Message>),
    /// The aggregator's link to this member failed; the error is forwarded
    /// in reply position exactly as a flat coordinator would observe it.
    Err(LinkError),
}

impl AggReply {
    /// Converts into the `Result` shape coordinator code folds over.
    pub fn into_result(self) -> Result<Message, LinkError> {
        match self {
            AggReply::Ok(msg) => Ok(*msg),
            AggReply::Err(e) => Err(e),
        }
    }

    /// Builds an entry from a link-level outcome.
    pub fn from_result(r: Result<Message, LinkError>) -> Self {
        match r {
            Ok(msg) => AggReply::Ok(Box::new(msg)),
            Err(e) => AggReply::Err(e),
        }
    }

    fn encoded_len(&self) -> usize {
        match self {
            AggReply::Ok(msg) => 1 + 4 + msg.encoded_len(),
            AggReply::Err(LinkError::Io(detail)) => 1 + 4 + detail.len(),
            AggReply::Err(_) => 1,
        }
    }

    fn encode(&self, buf: &mut BytesMut) {
        match self {
            AggReply::Ok(msg) => {
                buf.put_u8(0);
                buf.put_u32(msg.encoded_len() as u32);
                msg.encode_body(buf);
            }
            AggReply::Err(LinkError::Timeout) => buf.put_u8(1),
            AggReply::Err(LinkError::Disconnected) => buf.put_u8(2),
            AggReply::Err(LinkError::Malformed) => buf.put_u8(3),
            AggReply::Err(LinkError::Io(detail)) => {
                buf.put_u8(4);
                buf.put_u32(detail.len() as u32);
                buf.put_slice(detail.as_bytes());
            }
        }
    }

    fn decode(buf: &mut &[u8]) -> Option<Self> {
        if buf.remaining() < 1 {
            return None;
        }
        match buf.get_u8() {
            0 => {
                if buf.remaining() < 4 {
                    return None;
                }
                let len = buf.get_u32() as usize;
                if buf.remaining() < len {
                    return None;
                }
                let msg = Message::decode_slice(&buf[..len])?;
                *buf = &buf[len..];
                Some(AggReply::Ok(Box::new(msg)))
            }
            1 => Some(AggReply::Err(LinkError::Timeout)),
            2 => Some(AggReply::Err(LinkError::Disconnected)),
            3 => Some(AggReply::Err(LinkError::Malformed)),
            4 => {
                if buf.remaining() < 4 {
                    return None;
                }
                let len = buf.get_u32() as usize;
                if buf.remaining() < len {
                    return None;
                }
                let detail = std::str::from_utf8(&buf[..len]).ok()?.to_string();
                *buf = &buf[len..];
                Some(AggReply::Err(LinkError::Io(detail)))
            }
            _ => None,
        }
    }
}

/// A tuple on the wire: the paper's quaternion
/// `⟨i, j, P(t_ij), P_sky(t_ij, D_i)⟩` plus the attribute values (needed by
/// remote dominance checks).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TupleMsg {
    /// Identifier `(i, j)`: home site and per-site sequence number.
    pub id: TupleId,
    /// Attribute values of the tuple.
    pub values: Vec<f64>,
    /// Existential probability `P(t_ij)`.
    pub prob: f64,
    /// Local skyline probability `P_sky(t_ij, D_i)` at the home site.
    pub local_prob: f64,
}

impl TupleMsg {
    /// Builds the wire form of a tuple with its home-site local skyline
    /// probability.
    pub fn new(tuple: &UncertainTuple, local_prob: f64) -> Self {
        TupleMsg {
            id: tuple.id(),
            values: tuple.values().to_vec(),
            prob: tuple.prob().get(),
            local_prob,
        }
    }

    /// Reconstructs the carried [`UncertainTuple`].
    ///
    /// # Panics
    ///
    /// Panics if the message carries an invalid probability or empty
    /// values; messages built by [`TupleMsg::new`] are always valid.
    pub fn to_tuple(&self) -> UncertainTuple {
        UncertainTuple::new(
            self.id,
            self.values.clone(),
            Probability::new(self.prob).expect("wire tuples carry valid probabilities"),
        )
        .expect("wire tuples carry valid values")
    }

    fn encoded_len(&self) -> usize {
        4 + 8 + 2 + 8 * self.values.len() + 8 + 8
    }

    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u32(self.id.site.0);
        buf.put_u64(self.id.seq);
        buf.put_u16(self.values.len() as u16);
        for &v in &self.values {
            buf.put_f64(v);
        }
        buf.put_f64(self.prob);
        buf.put_f64(self.local_prob);
    }

    fn decode(buf: &mut impl Buf) -> Option<Self> {
        if buf.remaining() < 14 {
            return None;
        }
        let site = buf.get_u32();
        let seq = buf.get_u64();
        let dims = buf.get_u16() as usize;
        if buf.remaining() < 8 * dims + 16 {
            return None;
        }
        let values = (0..dims).map(|_| buf.get_f64()).collect();
        let prob = buf.get_f64();
        let local_prob = buf.get_f64();
        Some(TupleMsg { id: TupleId::new(site, seq), values, prob, local_prob })
    }
}

/// A per-site grid synopsis: for every cell of a uniform grid over the
/// site's bounding box, the survival product `∏ (1 − P(t))` of the tuples
/// inside the cell. Lets the server bound a foreign point's survival
/// product at that site without any further communication — at the price
/// of shipping the grid itself (the trade-off the paper's Section 5.2
/// argues against; `dsud-core` measures it).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SynopsisMsg {
    /// Dimensionality of the grid.
    pub dims: u16,
    /// Cells per dimension.
    pub resolution: u16,
    /// Lower corner of the gridded bounding box.
    pub lower: Vec<f64>,
    /// Upper corner of the gridded bounding box.
    pub upper: Vec<f64>,
    /// Row-major `resolution^dims` cell survival products.
    pub cells: Vec<f64>,
}

impl SynopsisMsg {
    /// Wire size in bytes.
    pub fn encoded_len(&self) -> usize {
        2 + 2 + 8 * self.lower.len() + 8 * self.upper.len() + 4 + 8 * self.cells.len()
    }

    /// The synopsis's bandwidth cost in the paper's unit: how many wire
    /// tuples of the same dimensionality its bytes amount to (rounded up).
    pub fn tuple_equivalents(&self) -> u64 {
        let tuple_bytes = 4 + 8 + 2 + 8 * self.dims as usize + 8 + 8;
        self.encoded_len().div_ceil(tuple_bytes) as u64
    }

    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u16(self.dims);
        buf.put_u16(self.resolution);
        for &v in self.lower.iter().chain(&self.upper) {
            buf.put_f64(v);
        }
        buf.put_u32(self.cells.len() as u32);
        for &c in &self.cells {
            buf.put_f64(c);
        }
    }

    fn decode(buf: &mut impl Buf) -> Option<Self> {
        if buf.remaining() < 4 {
            return None;
        }
        let dims = buf.get_u16();
        let resolution = buf.get_u16();
        let d = dims as usize;
        if buf.remaining() < 16 * d + 4 {
            return None;
        }
        let lower = (0..d).map(|_| buf.get_f64()).collect();
        let upper = (0..d).map(|_| buf.get_f64()).collect();
        let n = buf.get_u32() as usize;
        if buf.remaining() < 8 * n {
            return None;
        }
        let cells = (0..n).map(|_| buf.get_f64()).collect();
        Some(SynopsisMsg { dims, resolution, lower, upper, cells })
    }
}

/// Protocol messages between the central server `H` and local sites.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Message {
    /// `H → site`: begin a query; compute `SKY(D_i)` for threshold `q` on
    /// the given subspace and respond with the first representative.
    Start {
        /// Probability threshold `q`.
        q: f64,
        /// Queried subspace.
        mask: SubspaceMask,
    },
    /// `H → site`: send your next surviving representative tuple.
    RequestNext,
    /// `H → site`: candidate broadcast (the feedback of the Server-Delivery
    /// phase); the site replies with its survival product and prunes its
    /// local skyline.
    Feedback(TupleMsg),
    /// `site → H`: representative upload (`None` when the local skyline is
    /// exhausted).
    Upload(Option<TupleMsg>),
    /// `site → H`: reply to a [`Message::Feedback`] — the survival product
    /// `P_sky(t, D_x)` of Observation 1, plus how many local candidates the
    /// feedback pruned (telemetry only).
    SurvivalReply {
        /// `∏_{t' ∈ D_x, t' ≺ t} (1 − P(t'))`.
        survival: f64,
        /// Number of local skyline tuples this feedback eliminated.
        pruned: u64,
    },
    /// `site → H` (update maintenance): a tuple was inserted locally and
    /// the global skyline may change.
    NotifyInsert(TupleMsg),
    /// `site → H` (update maintenance): a tuple was deleted locally.
    NotifyDelete(TupleMsg),
    /// `H → site` (update maintenance): replace the site's replica of the
    /// current global skyline `SKY(H)`.
    ReplicaSync(Vec<TupleMsg>),
    /// `H → site` (update maintenance): add one tuple to the site's replica
    /// of `SKY(H)` (delta synchronization).
    ReplicaAdd(TupleMsg),
    /// `H → site` (update maintenance): remove one tuple from the site's
    /// replica of `SKY(H)`.
    ReplicaRemove(TupleMsg),
    /// `H → site` (update maintenance): return every local tuple strictly
    /// dominated by the carried point whose local skyline probability still
    /// meets the active query threshold — the re-evaluation region after a
    /// deletion.
    RegionQuery(TupleMsg),
    /// `site → H`: reply to [`Message::RegionQuery`].
    RegionReply(Vec<TupleMsg>),
    /// Simulation scaffolding, `driver → site`: apply this insertion as if
    /// it originated at the site. Not real network traffic (tuple count 0);
    /// the site's *reply* is the metered maintenance message.
    InjectInsert(TupleMsg),
    /// Simulation scaffolding, `driver → site`: apply this deletion as if
    /// it originated at the site.
    InjectDelete(TupleMsg),
    /// `H → site`: request a grid synopsis at the given resolution.
    SynopsisRequest {
        /// Cells per dimension.
        resolution: u16,
    },
    /// `site → H`: the requested synopsis.
    Synopsis(SynopsisMsg),
    /// Generic acknowledgement.
    Ack,
    /// `site → H`: the site could not decode the request frame. Transports
    /// translate this reply into [`LinkError::Malformed`](crate::LinkError)
    /// rather than surfacing it to protocol code, so a corrupted frame is a
    /// retryable transport fault instead of a dead site thread.
    DecodeError,
    /// `H → site`: a coalesced candidate broadcast — `K` feedbacks of one
    /// batched round in a single frame (one syscall on TCP instead of `K`).
    ///
    /// The site must process the candidates *in order* and answer with one
    /// [`Message::SurvivalBatchReply`] whose `survivals[k]` corresponds to
    /// the `k`-th candidate here. Survival products are computed against
    /// the site's tree alone, and local feedback pruning is applied after
    /// each candidate exactly as if the `K` candidates had arrived as `K`
    /// back-to-back [`Message::Feedback`] messages — so a batched round is
    /// bit-identical to an unbatched one.
    FeedbackBatch(Vec<TupleMsg>),
    /// `site → H`: reply to a [`Message::FeedbackBatch`] — one survival
    /// product per batched candidate (in batch order) plus the total number
    /// of local candidates the batch pruned (telemetry only).
    SurvivalBatchReply {
        /// `survivals[k]` is `∏_{t' ∈ D_x, t' ≺ t_k} (1 − P(t'))` for the
        /// `k`-th candidate of the batch.
        survivals: Vec<f64>,
        /// Number of local skyline tuples the whole batch eliminated
        /// (summed over the `K` feedbacks, in batch order).
        pruned: u64,
    },
    /// `H → site` (session layer): the carried protocol message belongs to
    /// the multiplexed query `query_id`. Sites route the inner message to
    /// that query's private cursor state and answer with the *untagged*
    /// inner reply (correlation is the multiplexing link's job, not the
    /// wire's). Traffic class and tuple count delegate to the inner
    /// message, so a tagged round costs exactly what the one-shot round
    /// costs plus the 8-byte id — headers stay free in the paper's unit.
    Tagged {
        /// Server-assigned query identifier.
        query_id: u64,
        /// The protocol message being multiplexed.
        inner: Box<Message>,
    },
    /// `H → site` (session layer): the tagged query is finished — discard
    /// its per-query cursor state. Sent wrapped in [`Message::Tagged`] so
    /// the site knows *which* session slot to clear; the site replies
    /// [`Message::Ack`].
    Release,
    /// `H → site`: [`Message::FeedbackBatch`] in the columnar wire layout
    /// of [`crate::wire`] — same candidates, same order, answered by one
    /// [`Message::SurvivalBatchReplyC`]. Sites with a frame-level fast
    /// path ([`crate::Service::handle_frame`]) process this frame through
    /// a borrowed [`crate::BatchView`] without materializing owned tuples.
    FeedbackBatchC(crate::TupleBlock),
    /// `site → H`: reply to a [`Message::FeedbackBatchC`] — identical
    /// factors and pruning count to [`Message::SurvivalBatchReply`], in
    /// the columnar wire layout.
    SurvivalBatchReplyC {
        /// `survivals[k]` is the `k`-th candidate's survival product, in
        /// batch order.
        survivals: Vec<f64>,
        /// Number of local skyline tuples the whole batch eliminated.
        pruned: u64,
    },
    /// `H → site` (update maintenance): [`Message::ReplicaSync`] in the
    /// columnar wire layout.
    ReplicaSyncC(crate::TupleBlock),
    /// `site → H`: [`Message::RegionReply`] in the columnar wire layout.
    RegionReplyC(crate::TupleBlock),
    /// `H → site` (health layer): heartbeat probe carrying an opaque
    /// nonce. A live site echoes the nonce back in a
    /// [`Message::HealthAck`]; a probe whose link errors out (after the
    /// retry budget) counts as a heartbeat miss against the site.
    HealthProbe {
        /// Opaque correlation nonce, echoed by the ack.
        nonce: u64,
    },
    /// `site → H`: reply to a [`Message::HealthProbe`], echoing its nonce.
    HealthAck {
        /// The probe's nonce, echoed verbatim.
        nonce: u64,
    },
    /// `H → aggregator` (tree topology): deliver `inner` to every listed
    /// member site — one frame on the root link where a flat coordinator
    /// would send `sites.len()` copies. The aggregator fans the inner
    /// message out to its children (re-wrapping for nested aggregators)
    /// and answers with one [`Message::AggReplies`] in ascending site
    /// order. The tuple count is charged *once* — the merge is exactly
    /// what the tree topology saves on the root link. The inner message
    /// may be any downward frame, including the columnar bulk twins, so
    /// aggregate frames compose with every wire format.
    AggBroadcast {
        /// Member sites the inner message is for, ascending.
        sites: Vec<u32>,
        /// The request each listed site receives.
        inner: Box<Message>,
    },
    /// `H → aggregator` (tree topology): per-site payloads coalesced into
    /// one frame — the scatter twin of [`Message::AggBroadcast`], used for
    /// batched survival scatters and targeted refills. Parts are ascending
    /// by site; the aggregator routes each part to its child (nesting for
    /// deeper trees) and answers with one [`Message::AggReplies`].
    AggScatter {
        /// `(site, request)` parts, ascending by site.
        parts: Vec<(u32, Message)>,
    },
    /// `aggregator → H` (tree topology): the merged per-site replies of an
    /// [`Message::AggBroadcast`] or [`Message::AggScatter`], ascending by
    /// site. Child-link failures travel as [`AggReply::Err`] entries, so
    /// the root observes exactly the per-site outcomes a flat coordinator
    /// would — quarantine and strict-abort decisions are unchanged.
    AggReplies {
        /// `(site, outcome)` entries, ascending by site.
        replies: Vec<(u32, AggReply)>,
    },
    /// `H → site` (plan phase): ask for the site's current mergeable
    /// synopsis. Sites answer with one [`Message::Sketch`]; a tree
    /// aggregator fans the request to its children, merges their replies
    /// associatively, and answers one combined sketch — the only reply
    /// kind the tree may legally combine, because sketch merge (bucket
    /// adds, register maxima) is order-free where survival-product folds
    /// are not.
    SketchRequest,
    /// `site → H` / `aggregator → H` (plan phase): one compact
    /// [`dsud_sketch::SiteSketch`] frame summarizing the local (or, from
    /// an aggregator, subtree-merged) skyline-probability distribution.
    /// Pure scheduling input: it never influences which tuples qualify.
    Sketch(Box<dsud_sketch::SiteSketch>),
}

/// Traffic classes used by the [`crate::BandwidthMeter`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TrafficClass {
    /// Representative uploads (site → H).
    Upload,
    /// Candidate broadcasts (H → sites).
    Feedback,
    /// Scalar replies (site → H).
    Reply,
    /// Control traffic (start / request-next / ack).
    Control,
    /// Update-maintenance traffic.
    Maintenance,
    /// Simulation scaffolding (injected updates): not real network traffic.
    Scaffold,
}

impl Message {
    /// Traffic class of the message.
    pub fn class(&self) -> TrafficClass {
        match self {
            Message::Upload(_) => TrafficClass::Upload,
            Message::Feedback(_) | Message::FeedbackBatch(_) | Message::FeedbackBatchC(_) => {
                TrafficClass::Feedback
            }
            Message::SurvivalReply { .. }
            | Message::SurvivalBatchReply { .. }
            | Message::SurvivalBatchReplyC { .. } => TrafficClass::Reply,
            Message::Start { .. } | Message::RequestNext | Message::Ack | Message::DecodeError => {
                TrafficClass::Control
            }
            Message::NotifyInsert(_)
            | Message::NotifyDelete(_)
            | Message::ReplicaSync(_)
            | Message::ReplicaAdd(_)
            | Message::ReplicaRemove(_)
            | Message::RegionQuery(_)
            | Message::RegionReply(_)
            | Message::ReplicaSyncC(_)
            | Message::RegionReplyC(_) => TrafficClass::Maintenance,
            Message::InjectInsert(_) | Message::InjectDelete(_) => TrafficClass::Scaffold,
            Message::SynopsisRequest { .. } => TrafficClass::Control,
            Message::Synopsis(_) => TrafficClass::Upload,
            // A tagged frame is the inner message plus a free header.
            Message::Tagged { inner, .. } => inner.class(),
            Message::Release => TrafficClass::Control,
            Message::HealthProbe { .. } | Message::HealthAck { .. } => TrafficClass::Control,
            // Aggregate containers are classified by their payload: a
            // merged broadcast is still feedback, a merged reply frame is
            // whatever its first delivered reply is. Mixed-class scatters
            // take the first part's class — the meter's per-class split is
            // diagnostic, the totals stay exact.
            Message::AggBroadcast { inner, .. } => inner.class(),
            Message::AggScatter { parts } => {
                parts.first().map_or(TrafficClass::Control, |(_, m)| m.class())
            }
            Message::AggReplies { replies } => replies
                .iter()
                .find_map(|(_, r)| match r {
                    AggReply::Ok(m) => Some(m.class()),
                    AggReply::Err(_) => None,
                })
                .unwrap_or(TrafficClass::Reply),
            // Plan-phase frames are control traffic with zero tuple weight:
            // the paper's bandwidth unit must not move when planning is on.
            Message::SketchRequest | Message::Sketch(_) => TrafficClass::Control,
        }
    }

    /// Number of tuples the message carries — the paper's bandwidth unit.
    pub fn tuple_count(&self) -> u64 {
        match self {
            Message::Upload(Some(_)) | Message::Feedback(_) => 1,
            Message::NotifyInsert(_) | Message::NotifyDelete(_) => 1,
            Message::ReplicaAdd(_) | Message::ReplicaRemove(_) | Message::RegionQuery(_) => 1,
            Message::ReplicaSync(tuples)
            | Message::RegionReply(tuples)
            | Message::FeedbackBatch(tuples) => tuples.len() as u64,
            // A columnar frame carries exactly the tuples its legacy twin
            // does — the layout saves bytes, never the paper's unit.
            Message::FeedbackBatchC(block)
            | Message::ReplicaSyncC(block)
            | Message::RegionReplyC(block) => block.len() as u64,
            // Synopses are charged their tuple-equivalent weight — the
            // honest cost the paper's Section 5.2 worries about.
            Message::Synopsis(s) => s.tuple_equivalents(),
            // Injected updates are simulation scaffolding, not traffic.
            Message::InjectInsert(_) | Message::InjectDelete(_) => 0,
            Message::Tagged { inner, .. } => inner.tuple_count(),
            // A merged broadcast ships its payload ONCE regardless of how
            // many member sites it addresses — the root-link saving the
            // tree topology exists for. Scatter parts and merged replies
            // each carry their own payloads and sum.
            Message::AggBroadcast { inner, .. } => inner.tuple_count(),
            Message::AggScatter { parts } => parts.iter().map(|(_, m)| m.tuple_count()).sum(),
            Message::AggReplies { replies } => replies
                .iter()
                .map(|(_, r)| match r {
                    AggReply::Ok(m) => m.tuple_count(),
                    AggReply::Err(_) => 0,
                })
                .sum(),
            _ => 0,
        }
    }

    /// Serializes the message into its binary wire form.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.encoded_len());
        self.encode_into(&mut buf);
        buf.freeze()
    }

    /// Serializes the message into a caller-owned buffer, clearing it
    /// first. Transports that send many frames over one connection keep a
    /// single [`BytesMut`] alive and re-encode into it, so a batched round
    /// costs one write per site without any per-frame allocation.
    pub fn encode_into(&self, buf: &mut BytesMut) {
        buf.clear();
        buf.reserve(self.encoded_len());
        self.encode_body(buf);
    }

    /// Appends the wire form without clearing the buffer first — the
    /// recursive step [`Message::Tagged`] uses to splice its inner message
    /// after the id header.
    fn encode_body(&self, mut buf: &mut BytesMut) {
        match self {
            Message::Start { q, mask } => {
                buf.put_u8(0);
                buf.put_f64(*q);
                buf.put_u64(mask.bits());
            }
            Message::RequestNext => buf.put_u8(1),
            Message::Feedback(t) => {
                buf.put_u8(2);
                t.encode(&mut buf);
            }
            Message::Upload(None) => buf.put_u8(3),
            Message::Upload(Some(t)) => {
                buf.put_u8(4);
                t.encode(&mut buf);
            }
            Message::SurvivalReply { survival, pruned } => {
                buf.put_u8(5);
                buf.put_f64(*survival);
                buf.put_u64(*pruned);
            }
            Message::NotifyInsert(t) => {
                buf.put_u8(6);
                t.encode(&mut buf);
            }
            Message::NotifyDelete(t) => {
                buf.put_u8(7);
                t.encode(&mut buf);
            }
            Message::ReplicaSync(tuples) => {
                buf.put_u8(8);
                buf.put_u32(tuples.len() as u32);
                for t in tuples {
                    t.encode(&mut buf);
                }
            }
            Message::Ack => buf.put_u8(9),
            Message::ReplicaAdd(t) => {
                buf.put_u8(10);
                t.encode(&mut buf);
            }
            Message::ReplicaRemove(t) => {
                buf.put_u8(11);
                t.encode(&mut buf);
            }
            Message::RegionQuery(t) => {
                buf.put_u8(12);
                t.encode(&mut buf);
            }
            Message::RegionReply(tuples) => {
                buf.put_u8(13);
                buf.put_u32(tuples.len() as u32);
                for t in tuples {
                    t.encode(&mut buf);
                }
            }
            Message::InjectInsert(t) => {
                buf.put_u8(14);
                t.encode(&mut buf);
            }
            Message::InjectDelete(t) => {
                buf.put_u8(15);
                t.encode(&mut buf);
            }
            Message::SynopsisRequest { resolution } => {
                buf.put_u8(16);
                buf.put_u16(*resolution);
            }
            Message::Synopsis(syn) => {
                buf.put_u8(17);
                syn.encode(&mut buf);
            }
            Message::DecodeError => buf.put_u8(18),
            Message::FeedbackBatch(tuples) => {
                buf.put_u8(19);
                buf.put_u32(tuples.len() as u32);
                for t in tuples {
                    t.encode(&mut buf);
                }
            }
            Message::SurvivalBatchReply { survivals, pruned } => {
                buf.put_u8(20);
                buf.put_u32(survivals.len() as u32);
                for &s in survivals {
                    buf.put_f64(s);
                }
                buf.put_u64(*pruned);
            }
            Message::Tagged { query_id, inner } => {
                buf.put_u8(21);
                buf.put_u64(*query_id);
                inner.encode_body(buf);
            }
            Message::Release => buf.put_u8(22),
            Message::FeedbackBatchC(block) => {
                crate::wire::encode_block(crate::wire::TAG_FEEDBACK_BATCH_C, block, buf);
            }
            Message::SurvivalBatchReplyC { survivals, pruned } => {
                crate::wire::encode_survivals(survivals, *pruned, buf);
            }
            Message::ReplicaSyncC(block) => {
                crate::wire::encode_block(crate::wire::TAG_REPLICA_SYNC_C, block, buf);
            }
            Message::RegionReplyC(block) => {
                crate::wire::encode_block(crate::wire::TAG_REGION_REPLY_C, block, buf);
            }
            Message::HealthProbe { nonce } => {
                buf.put_u8(27);
                buf.put_u64(*nonce);
            }
            Message::HealthAck { nonce } => {
                buf.put_u8(28);
                buf.put_u64(*nonce);
            }
            Message::AggBroadcast { sites, inner } => {
                buf.put_u8(29);
                buf.put_u32(sites.len() as u32);
                for &s in sites {
                    buf.put_u32(s);
                }
                // The inner message is the rest of the frame, like Tagged.
                inner.encode_body(buf);
            }
            Message::AggScatter { parts } => {
                buf.put_u8(30);
                buf.put_u32(parts.len() as u32);
                for (site, msg) in parts {
                    buf.put_u32(*site);
                    buf.put_u32(msg.encoded_len() as u32);
                    msg.encode_body(buf);
                }
            }
            Message::AggReplies { replies } => {
                buf.put_u8(31);
                buf.put_u32(replies.len() as u32);
                for (site, reply) in replies {
                    buf.put_u32(*site);
                    reply.encode(buf);
                }
            }
            Message::SketchRequest => buf.put_u8(32),
            Message::Sketch(sketch) => {
                buf.put_u8(33);
                sketch.encode(buf);
            }
        }
    }

    /// Size of the binary wire form, in bytes.
    pub fn encoded_len(&self) -> usize {
        1 + match self {
            Message::Start { .. } => 16,
            Message::RequestNext | Message::Upload(None) | Message::Ack | Message::DecodeError => 0,
            Message::Feedback(t)
            | Message::Upload(Some(t))
            | Message::NotifyInsert(t)
            | Message::NotifyDelete(t)
            | Message::ReplicaAdd(t)
            | Message::ReplicaRemove(t)
            | Message::RegionQuery(t)
            | Message::InjectInsert(t)
            | Message::InjectDelete(t) => t.encoded_len(),
            Message::SurvivalReply { .. } => 16,
            Message::SurvivalBatchReply { survivals, .. } => 4 + 8 * survivals.len() + 8,
            Message::ReplicaSync(tuples)
            | Message::RegionReply(tuples)
            | Message::FeedbackBatch(tuples) => {
                4 + tuples.iter().map(TupleMsg::encoded_len).sum::<usize>()
            }
            Message::SynopsisRequest { .. } => 2,
            Message::Synopsis(syn) => syn.encoded_len(),
            Message::Tagged { inner, .. } => 8 + inner.encoded_len(),
            Message::Release => 0,
            // The columnar helpers count the whole frame including the tag
            // byte this match already charged.
            Message::FeedbackBatchC(block)
            | Message::ReplicaSyncC(block)
            | Message::RegionReplyC(block) => {
                crate::wire::block_encoded_len(block.len(), block.dims as usize) - 1
            }
            Message::SurvivalBatchReplyC { survivals, .. } => {
                crate::wire::survivals_encoded_len(survivals.len()) - 1
            }
            Message::HealthProbe { .. } | Message::HealthAck { .. } => 8,
            Message::AggBroadcast { sites, inner } => 4 + 4 * sites.len() + inner.encoded_len(),
            Message::AggScatter { parts } => {
                4 + parts.iter().map(|(_, m)| 4 + 4 + m.encoded_len()).sum::<usize>()
            }
            Message::AggReplies { replies } => {
                4 + replies.iter().map(|(_, r)| 4 + r.encoded_len()).sum::<usize>()
            }
            Message::SketchRequest => 0,
            Message::Sketch(_) => dsud_sketch::SiteSketch::encoded_len(),
        }
    }

    /// For a columnar frame (or a [`Message::Tagged`] wrapper around one):
    /// the frame length its *legacy* row-major encoding would have had.
    /// `None` for every other message. The meter uses this to account the
    /// bytes the columnar layout saved; note the columnar survival reply
    /// is slightly *larger* than its legacy twin (a fixed 11-byte header
    /// premium buys the castable layout), which the meter's saturating
    /// subtraction records as zero saved rather than negative.
    pub fn legacy_encoded_len(&self) -> Option<usize> {
        // A legacy TupleMsg of d values is 30 + 8d bytes; row vectors add
        // a 1-byte tag + 4-byte count.
        let rows = |n: usize, dims: usize| 5 + n * (30 + 8 * dims);
        match self {
            Message::FeedbackBatchC(block)
            | Message::ReplicaSyncC(block)
            | Message::RegionReplyC(block) => Some(rows(block.len(), block.dims as usize)),
            Message::SurvivalBatchReplyC { survivals, .. } => Some(13 + 8 * survivals.len()),
            Message::Tagged { inner, .. } => inner.legacy_encoded_len().map(|l| l + 9),
            _ => None,
        }
    }

    /// Deserializes a message from its binary wire form.
    ///
    /// Returns `None` for malformed input.
    pub fn decode(buf: Bytes) -> Option<Self> {
        Self::decode_slice(&buf)
    }

    /// [`Message::decode`] over a borrowed buffer, so transports can reuse
    /// one receive buffer across frames instead of handing each payload an
    /// owned allocation.
    pub fn decode_slice(mut buf: &[u8]) -> Option<Self> {
        if buf.is_empty() {
            return None;
        }
        // Columnar frames (tags 23–26) carry their own validated header
        // and exact-length contract; they are decoded from the whole frame
        // so the section offsets in the wire layout stay tag-relative.
        if crate::wire::is_columnar_tag(buf[0]) {
            return crate::wire::decode_columnar(buf);
        }
        let tag = buf.get_u8();
        let msg = match tag {
            0 => {
                if buf.remaining() < 16 {
                    return None;
                }
                let q = buf.get_f64();
                let mask = SubspaceMask::try_from_bits(buf.get_u64()).ok()?;
                Message::Start { q, mask }
            }
            1 => Message::RequestNext,
            2 => Message::Feedback(TupleMsg::decode(&mut buf)?),
            3 => Message::Upload(None),
            4 => Message::Upload(Some(TupleMsg::decode(&mut buf)?)),
            5 => {
                if buf.remaining() < 16 {
                    return None;
                }
                Message::SurvivalReply { survival: buf.get_f64(), pruned: buf.get_u64() }
            }
            6 => Message::NotifyInsert(TupleMsg::decode(&mut buf)?),
            7 => Message::NotifyDelete(TupleMsg::decode(&mut buf)?),
            8 => {
                if buf.remaining() < 4 {
                    return None;
                }
                let n = buf.get_u32() as usize;
                let mut tuples = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    tuples.push(TupleMsg::decode(&mut buf)?);
                }
                Message::ReplicaSync(tuples)
            }
            9 => Message::Ack,
            10 => Message::ReplicaAdd(TupleMsg::decode(&mut buf)?),
            11 => Message::ReplicaRemove(TupleMsg::decode(&mut buf)?),
            12 => Message::RegionQuery(TupleMsg::decode(&mut buf)?),
            13 => {
                if buf.remaining() < 4 {
                    return None;
                }
                let n = buf.get_u32() as usize;
                let mut tuples = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    tuples.push(TupleMsg::decode(&mut buf)?);
                }
                Message::RegionReply(tuples)
            }
            14 => Message::InjectInsert(TupleMsg::decode(&mut buf)?),
            15 => Message::InjectDelete(TupleMsg::decode(&mut buf)?),
            16 => {
                if buf.remaining() < 2 {
                    return None;
                }
                Message::SynopsisRequest { resolution: buf.get_u16() }
            }
            17 => Message::Synopsis(SynopsisMsg::decode(&mut buf)?),
            18 => Message::DecodeError,
            19 => {
                if buf.remaining() < 4 {
                    return None;
                }
                let n = buf.get_u32() as usize;
                let mut tuples = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    tuples.push(TupleMsg::decode(&mut buf)?);
                }
                Message::FeedbackBatch(tuples)
            }
            20 => {
                if buf.remaining() < 4 {
                    return None;
                }
                let n = buf.get_u32() as usize;
                if buf.remaining() < 8 * n + 8 {
                    return None;
                }
                let survivals = (0..n).map(|_| buf.get_f64()).collect();
                Message::SurvivalBatchReply { survivals, pruned: buf.get_u64() }
            }
            21 => {
                if buf.remaining() < 8 {
                    return None;
                }
                let query_id = buf.get_u64();
                // The inner message is the rest of the frame; the recursive
                // decode enforces its own exact-length contract.
                let inner = Box::new(Self::decode_slice(buf)?);
                buf = &[];
                Message::Tagged { query_id, inner }
            }
            22 => Message::Release,
            27 => {
                if buf.remaining() < 8 {
                    return None;
                }
                Message::HealthProbe { nonce: buf.get_u64() }
            }
            28 => {
                if buf.remaining() < 8 {
                    return None;
                }
                Message::HealthAck { nonce: buf.get_u64() }
            }
            29 => {
                if buf.remaining() < 4 {
                    return None;
                }
                let n = buf.get_u32() as usize;
                if buf.remaining() < 4 * n {
                    return None;
                }
                let sites = (0..n).map(|_| buf.get_u32()).collect();
                // The inner message is the rest of the frame; the recursive
                // decode enforces its own exact-length contract.
                let inner = Box::new(Self::decode_slice(buf)?);
                buf = &[];
                Message::AggBroadcast { sites, inner }
            }
            30 => {
                if buf.remaining() < 4 {
                    return None;
                }
                let n = buf.get_u32() as usize;
                let mut parts = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    if buf.remaining() < 8 {
                        return None;
                    }
                    let site = buf.get_u32();
                    let len = buf.get_u32() as usize;
                    if buf.remaining() < len {
                        return None;
                    }
                    let msg = Self::decode_slice(&buf[..len])?;
                    buf = &buf[len..];
                    parts.push((site, msg));
                }
                Message::AggScatter { parts }
            }
            31 => {
                if buf.remaining() < 4 {
                    return None;
                }
                let n = buf.get_u32() as usize;
                let mut replies = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    if buf.remaining() < 4 {
                        return None;
                    }
                    let site = buf.get_u32();
                    let reply = AggReply::decode(&mut buf)?;
                    replies.push((site, reply));
                }
                Message::AggReplies { replies }
            }
            32 => Message::SketchRequest,
            33 => {
                // The sketch payload carries its own magic/version header
                // and a fixed exact length; the trailing has_remaining
                // check below rejects any over-long frame.
                Message::Sketch(Box::new(dsud_sketch::SiteSketch::decode(&mut buf)?))
            }
            _ => return None,
        };
        if buf.has_remaining() {
            return None;
        }
        Some(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsud_uncertain::Probability;

    fn sample_sketch() -> dsud_sketch::SiteSketch {
        let mut s = dsud_sketch::SiteSketch::default();
        for i in 0..24u64 {
            s.record(1_000 + i, f64::from(i as u32 % 10) / 10.0 + 0.05);
        }
        s.forget(0.15);
        s
    }

    fn sample_tuple_msg() -> TupleMsg {
        let t = UncertainTuple::new(
            TupleId::new(3, 17),
            vec![6.0, 6.5, 7.0],
            Probability::new(0.7).unwrap(),
        )
        .unwrap();
        TupleMsg::new(&t, 0.65)
    }

    fn all_messages() -> Vec<Message> {
        vec![
            Message::Start { q: 0.3, mask: SubspaceMask::full(3).unwrap() },
            Message::RequestNext,
            Message::Feedback(sample_tuple_msg()),
            Message::Upload(None),
            Message::Upload(Some(sample_tuple_msg())),
            Message::SurvivalReply { survival: 0.42, pruned: 3 },
            Message::NotifyInsert(sample_tuple_msg()),
            Message::NotifyDelete(sample_tuple_msg()),
            Message::ReplicaSync(vec![sample_tuple_msg(), sample_tuple_msg()]),
            Message::ReplicaAdd(sample_tuple_msg()),
            Message::ReplicaRemove(sample_tuple_msg()),
            Message::RegionQuery(sample_tuple_msg()),
            Message::RegionReply(vec![sample_tuple_msg()]),
            Message::InjectInsert(sample_tuple_msg()),
            Message::InjectDelete(sample_tuple_msg()),
            Message::SynopsisRequest { resolution: 8 },
            Message::Synopsis(SynopsisMsg {
                dims: 2,
                resolution: 2,
                lower: vec![0.0, 0.0],
                upper: vec![1.0, 1.0],
                cells: vec![0.5, 0.25, 1.0, 0.75],
            }),
            Message::Ack,
            Message::DecodeError,
            Message::FeedbackBatch(vec![sample_tuple_msg(); 3]),
            Message::SurvivalBatchReply { survivals: vec![0.9, 0.25, 1.0], pruned: 4 },
            Message::Tagged { query_id: 7, inner: Box::new(Message::Feedback(sample_tuple_msg())) },
            Message::Tagged { query_id: 7, inner: Box::new(Message::Release) },
            Message::Release,
            Message::FeedbackBatchC(crate::TupleBlock::from_msgs(&vec![sample_tuple_msg(); 3])),
            Message::SurvivalBatchReplyC { survivals: vec![0.9, 0.25, 1.0], pruned: 4 },
            Message::ReplicaSyncC(crate::TupleBlock::from_msgs(&vec![sample_tuple_msg(); 2])),
            Message::RegionReplyC(crate::TupleBlock::from_msgs(&[sample_tuple_msg()])),
            Message::Tagged {
                query_id: 9,
                inner: Box::new(Message::FeedbackBatchC(crate::TupleBlock::from_msgs(&[
                    sample_tuple_msg(),
                ]))),
            },
            Message::HealthProbe { nonce: 0xfeed_beef },
            Message::HealthAck { nonce: 0xfeed_beef },
            Message::Tagged { query_id: 3, inner: Box::new(Message::HealthProbe { nonce: 12 }) },
            Message::AggBroadcast {
                sites: vec![4, 5, 6, 7],
                inner: Box::new(Message::Feedback(sample_tuple_msg())),
            },
            // Columnar wire twin inside an aggregate container: the tree
            // topology's bulk frames are the same containers around the
            // same columnar payloads.
            Message::AggBroadcast {
                sites: vec![0, 1],
                inner: Box::new(Message::FeedbackBatchC(crate::TupleBlock::from_msgs(&vec![
                    sample_tuple_msg();
                    3
                ]))),
            },
            Message::AggScatter {
                parts: vec![
                    (2, Message::RequestNext),
                    (3, Message::FeedbackBatch(vec![sample_tuple_msg(); 2])),
                ],
            },
            Message::AggReplies {
                replies: vec![
                    (2, AggReply::Ok(Box::new(Message::Upload(Some(sample_tuple_msg()))))),
                    (3, AggReply::Err(LinkError::Timeout)),
                    (4, AggReply::Err(LinkError::Io("connection reset".into()))),
                ],
            },
            Message::Tagged {
                query_id: 11,
                inner: Box::new(Message::AggBroadcast {
                    sites: vec![0, 1, 2],
                    inner: Box::new(Message::RequestNext),
                }),
            },
            Message::SketchRequest,
            Message::Sketch(Box::new(sample_sketch())),
            // Plan-phase frames compose with the session mux and the tree
            // containers exactly like every other frame kind.
            Message::Tagged { query_id: 13, inner: Box::new(Message::SketchRequest) },
            Message::Tagged {
                query_id: 13,
                inner: Box::new(Message::Sketch(Box::new(sample_sketch()))),
            },
            Message::AggBroadcast { sites: vec![0, 1, 2], inner: Box::new(Message::SketchRequest) },
            Message::AggReplies {
                replies: vec![
                    (0, AggReply::Ok(Box::new(Message::Sketch(Box::new(sample_sketch()))))),
                    (1, AggReply::Err(LinkError::Timeout)),
                ],
            },
        ]
    }

    /// Golden wire contract: `encoded_len` is the exact frame length for
    /// every variant — the pipelined transports pre-reserve outstanding
    /// frames from it — and the sample set covers every wire tag `0..=33`.
    /// Adding a message variant without extending `all_messages` (and
    /// without a matching `encoded_len` arm) fails here, not in a
    /// transport at 2 a.m.
    #[test]
    fn encoded_len_matches_wire_length_for_every_tag() {
        let empties = vec![
            Message::ReplicaSync(Vec::new()),
            Message::RegionReply(Vec::new()),
            Message::FeedbackBatch(Vec::new()),
            Message::SurvivalBatchReply { survivals: Vec::new(), pruned: 0 },
            Message::FeedbackBatchC(crate::TupleBlock::default()),
            Message::SurvivalBatchReplyC { survivals: Vec::new(), pruned: 0 },
            Message::ReplicaSyncC(crate::TupleBlock::default()),
            Message::RegionReplyC(crate::TupleBlock::default()),
            Message::AggBroadcast { sites: Vec::new(), inner: Box::new(Message::Ack) },
            Message::AggScatter { parts: Vec::new() },
            Message::AggReplies { replies: Vec::new() },
        ];
        let mut tags = Vec::new();
        for msg in all_messages().into_iter().chain(empties) {
            let bytes = msg.encode();
            assert_eq!(bytes.len(), msg.encoded_len(), "{msg:?}");
            tags.push(bytes[0]);
        }
        tags.sort_unstable();
        tags.dedup();
        assert_eq!(tags, (0u8..=33).collect::<Vec<_>>(), "every wire tag 0..=33 represented");
    }

    /// The columnar frames are re-encodings, not new semantics: each
    /// carries row-for-row the payload of its legacy twin (same ids,
    /// bit-identical floats, same order), shares its traffic class and
    /// tuple count, and `legacy_encoded_len` reports exactly the twin's
    /// frame length.
    #[test]
    fn columnar_frames_mirror_their_legacy_twins() {
        let tuples = vec![sample_tuple_msg(); 3];
        let block = crate::TupleBlock::from_msgs(&tuples);
        for (columnar, legacy) in [
            (Message::FeedbackBatchC(block.clone()), Message::FeedbackBatch(tuples.clone())),
            (
                Message::SurvivalBatchReplyC { survivals: vec![0.5, 0.25], pruned: 2 },
                Message::SurvivalBatchReply { survivals: vec![0.5, 0.25], pruned: 2 },
            ),
            (Message::ReplicaSyncC(block.clone()), Message::ReplicaSync(tuples.clone())),
            (Message::RegionReplyC(block.clone()), Message::RegionReply(tuples.clone())),
        ] {
            assert_eq!(columnar.class(), legacy.class(), "{columnar:?}");
            assert_eq!(columnar.tuple_count(), legacy.tuple_count(), "{columnar:?}");
            assert_eq!(columnar.legacy_encoded_len(), Some(legacy.encoded_len()), "{columnar:?}");
            // Decoding the columnar frame restores bit-identical rows.
            let back = Message::decode_slice(&columnar.encode()).expect("well-formed");
            match (&back, &legacy) {
                (Message::FeedbackBatchC(b), Message::FeedbackBatch(t))
                | (Message::ReplicaSyncC(b), Message::ReplicaSync(t))
                | (Message::RegionReplyC(b), Message::RegionReply(t)) => {
                    assert_eq!(&b.to_msgs(), t);
                }
                (
                    Message::SurvivalBatchReplyC { survivals: a, pruned: pa },
                    Message::SurvivalBatchReply { survivals: b, pruned: pb },
                ) => {
                    assert_eq!(a, b);
                    assert_eq!(pa, pb);
                }
                other => panic!("unexpected decode pairing {other:?}"),
            }
        }
        // The tuple-block frame saves 2 bytes per row (no per-row dims
        // field) against an 11-byte header premium, so it is strictly
        // smaller from 6 rows up — e.g. at the default batch size 16.
        let big = vec![sample_tuple_msg(); 16];
        let c = Message::FeedbackBatchC(crate::TupleBlock::from_msgs(&big)).encoded_len();
        let l = Message::FeedbackBatch(big).encoded_len();
        assert!(c < l, "columnar batch {c} >= legacy {l}");
    }

    /// Fuzz-ish corpus of malformed columnar headers: every mutation must
    /// decode to `None` (the transports answer [`Message::DecodeError`]),
    /// never panic.
    #[test]
    fn malformed_columnar_headers_decode_to_none() {
        let good =
            Message::FeedbackBatchC(crate::TupleBlock::from_msgs(&vec![sample_tuple_msg(); 4]))
                .encode();
        assert!(Message::decode_slice(&good).is_some());
        let mut corpus: Vec<Vec<u8>> = Vec::new();
        // Bad magic, each byte separately.
        for i in 1..4 {
            let mut bad = good.to_vec();
            bad[i] ^= 0xff;
            corpus.push(bad);
        }
        // Wrong column lengths: inflated and deflated row counts, inflated
        // dims, dims over the SubspaceMask bound.
        for (at, val) in [(4usize, 1000u32), (4, 0)] {
            let mut bad = good.to_vec();
            bad[at..at + 4].copy_from_slice(&val.to_le_bytes());
            corpus.push(bad);
        }
        for dims in [7u16, 65, u16::MAX] {
            let mut bad = good.to_vec();
            bad[8..10].copy_from_slice(&dims.to_le_bytes());
            corpus.push(bad);
        }
        // Nonzero padding.
        for i in 10..16 {
            let mut bad = good.to_vec();
            bad[i] = 0xaa;
            corpus.push(bad);
        }
        // Misaligned / mis-sized payloads: truncations at every section
        // boundary and single trailing bytes.
        for cut in [good.len() - 1, good.len() - 7, super::super::wire::HEADER_LEN, 5] {
            corpus.push(good[..cut].to_vec());
        }
        let mut long = good.to_vec();
        long.push(0);
        corpus.push(long);
        // A truncated header on every columnar tag.
        for tag in 23u8..=26 {
            corpus.push(vec![tag]);
            corpus.push(vec![tag, b'D', b'S']);
        }
        for (i, frame) in corpus.iter().enumerate() {
            assert!(
                Message::decode_slice(frame).is_none(),
                "corpus entry {i} must reject: {frame:?}"
            );
        }
    }

    /// Malformed *compositions*: tagged health probes and columnar frames
    /// inside a session wrapper, mutated at every layer. Every entry must
    /// decode to `None` (the daemon answers [`Message::DecodeError`] and
    /// keeps serving), never panic.
    #[test]
    fn malformed_tagged_compositions_decode_to_none() {
        let probe =
            Message::Tagged { query_id: 5, inner: Box::new(Message::HealthProbe { nonce: 77 }) }
                .encode();
        let sync = Message::Tagged {
            query_id: 5,
            inner: Box::new(Message::ReplicaSyncC(crate::TupleBlock::from_msgs(&vec![
                sample_tuple_msg();
                4
            ]))),
        }
        .encode();
        assert!(Message::decode_slice(&probe).is_some());
        assert!(Message::decode_slice(&sync).is_some());

        let mut corpus: Vec<Vec<u8>> = Vec::new();
        // Tagged{HealthProbe}: truncated at every boundary — mid-id,
        // after the id, mid-nonce — plus a trailing byte.
        for cut in [1, 5, 9, 10, probe.len() - 1] {
            corpus.push(probe[..cut].to_vec());
        }
        let mut long = probe.to_vec();
        long.push(0);
        corpus.push(long);
        // Bare probe/ack truncations.
        corpus.push(vec![27]);
        corpus.push(vec![27, 1, 2, 3]);
        corpus.push(vec![28]);
        corpus.push(vec![28, 1, 2, 3, 4, 5, 6]);
        // Truncated ReplicaSyncC inside a session wrapper: cut inside the
        // columnar header and inside the column payload.
        for cut in [10, 12, sync.len() - 1, sync.len() - 9] {
            corpus.push(sync[..cut].to_vec());
        }
        // Corrupt the columnar magic through the wrapper.
        let mut bad_magic = sync.to_vec();
        bad_magic[10] ^= 0xff;
        corpus.push(bad_magic);
        // Inflate the inner row count through the wrapper.
        let mut bad_rows = sync.to_vec();
        bad_rows[13..17].copy_from_slice(&1000u32.to_le_bytes());
        corpus.push(bad_rows);
        for (i, frame) in corpus.iter().enumerate() {
            assert!(
                Message::decode_slice(frame).is_none(),
                "composition corpus entry {i} must reject: {frame:?}"
            );
        }
    }

    /// Golden bytes for the plan-phase tags: the request is a bare tag 32,
    /// and the sketch frame opens `33, magic, version, tuples, deletes`
    /// before its three fixed-width sections. Pinning the prefix (and the
    /// exact frame length) keeps the layout stable the way the columnar
    /// headers are.
    #[test]
    fn sketch_frames_have_golden_wire_bytes() {
        assert_eq!(&Message::SketchRequest.encode()[..], &[32]);

        let mut empty =
            Message::Sketch(Box::new(dsud_sketch::SiteSketch::default())).encode().to_vec();
        assert_eq!(empty.len(), 1 + dsud_sketch::SiteSketch::encoded_len());
        // tag, magic 0x5AD5 big-endian, version 1, tuples=0, deletes=0.
        assert_eq!(
            &empty[..20],
            &[33, 0x5A, 0xD5, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0]
        );
        // Every remaining section byte of an empty sketch is zero.
        assert!(empty[20..].iter().all(|&b| b == 0));
        // A recorded observation moves payload bytes, never the header.
        let mut one = dsud_sketch::SiteSketch::default();
        one.record(7, 0.5);
        empty = Message::Sketch(Box::new(one)).encode().to_vec();
        assert_eq!(&empty[..4], &[33, 0x5A, 0xD5, 1]);
    }

    /// Plan-phase frame corpus: truncations at every section boundary,
    /// corrupted magic/version, trailing bytes — bare, `Tagged`-wrapped,
    /// and inside an aggregate reply container. A malformed sketch must
    /// decode to `None` (the planner then degrades to static planning),
    /// never panic or misalign a section cursor.
    #[test]
    fn malformed_sketch_frames_decode_to_none() {
        let frame = Message::Sketch(Box::new(sample_sketch())).encode();
        assert!(Message::decode_slice(&frame).is_some());
        let len = frame.len();

        let mut corpus: Vec<Vec<u8>> = Vec::new();
        // Truncations inside the magic, version, and counters, then at the
        // quantile/HLL/count-min section boundaries, then one byte short.
        for cut in [1, 2, 3, 4, 11, 19, 20 + 512, 20 + 512 + 64, len - 1] {
            corpus.push(frame[..cut].to_vec());
        }
        // Trailing byte after a complete sketch.
        let mut long = frame.to_vec();
        long.push(0);
        corpus.push(long);
        // Corrupted magic and unknown version.
        for at in [1, 3] {
            let mut bad = frame.to_vec();
            bad[at] ^= 0xff;
            corpus.push(bad);
        }
        // The same failures through the session wrapper: every offset
        // shifts by the 9-byte Tagged header, the contract holds.
        let tagged = Message::Tagged {
            query_id: 6,
            inner: Box::new(Message::Sketch(Box::new(sample_sketch()))),
        }
        .encode();
        assert!(Message::decode_slice(&tagged).is_some());
        for cut in [9, 10, 12, tagged.len() - 1] {
            corpus.push(tagged[..cut].to_vec());
        }
        let mut bad_wrapped = tagged.to_vec();
        bad_wrapped[10] ^= 0xff; // magic under the wrapper
        corpus.push(bad_wrapped);
        // And inside an aggregate reply container, as a tree aggregator
        // would ship it: a corrupt or truncated sketch reply rejects the
        // whole frame instead of sliding the reply cursor.
        let agg = Message::AggReplies {
            replies: vec![(0, AggReply::Ok(Box::new(Message::Sketch(Box::new(sample_sketch())))))],
        }
        .encode();
        assert!(Message::decode_slice(&agg).is_some());
        corpus.push(agg[..agg.len() - 1].to_vec());
        let magic_at = agg
            .windows(3)
            .position(|w| w == [33, 0x5A, 0xD5])
            .expect("the embedded sketch header is somewhere in the container");
        let mut bad_agg = agg.to_vec();
        bad_agg[magic_at + 1] ^= 0xff;
        corpus.push(bad_agg);

        for (i, frame) in corpus.iter().enumerate() {
            assert!(
                Message::decode_slice(frame).is_none(),
                "sketch corpus entry {i} must reject ({} bytes)",
                frame.len()
            );
        }
    }

    /// Plan-phase frames are control traffic with zero tuple weight — the
    /// paper's bandwidth unit may not move when planning turns on.
    #[test]
    fn sketch_frames_are_zero_tuple_control_traffic() {
        let sketch = Message::Sketch(Box::new(sample_sketch()));
        assert_eq!(Message::SketchRequest.class(), TrafficClass::Control);
        assert_eq!(sketch.class(), TrafficClass::Control);
        assert_eq!(Message::SketchRequest.tuple_count(), 0);
        assert_eq!(sketch.tuple_count(), 0);
        assert_eq!(sketch.legacy_encoded_len(), None, "no columnar twin to credit");
    }

    #[test]
    fn tagged_frames_delegate_cost_to_inner_message() {
        // A tagged feedback is still one feedback tuple on the wire; the
        // 8-byte id is header overhead, free in the paper's unit.
        let inner = Message::Feedback(sample_tuple_msg());
        let tagged = Message::Tagged { query_id: 42, inner: Box::new(inner.clone()) };
        assert_eq!(tagged.class(), TrafficClass::Feedback);
        assert_eq!(tagged.tuple_count(), 1);
        assert_eq!(tagged.encoded_len(), inner.encoded_len() + 9);
        assert_eq!(Message::Release.class(), TrafficClass::Control);
        assert_eq!(Message::Release.tuple_count(), 0);
        // Truncated id and truncated inner payload both fail cleanly.
        assert!(Message::decode(Bytes::from_static(&[21, 0, 0])).is_none());
        assert!(Message::decode(Bytes::from_static(&[21, 0, 0, 0, 0, 0, 0, 0, 1, 99])).is_none());
    }

    #[test]
    fn encode_decode_roundtrip() {
        for msg in all_messages() {
            let bytes = msg.encode();
            assert_eq!(bytes.len(), msg.encoded_len(), "{msg:?}");
            let back = Message::decode(bytes).expect("well-formed message");
            assert_eq!(back, msg);
        }
    }

    #[test]
    fn pooled_buffers_roundtrip_identically() {
        // One shared encode buffer across every message, decoded from the
        // borrowed bytes: the pooled path must be byte-identical to the
        // allocating one.
        let mut buf = BytesMut::new();
        for msg in all_messages() {
            msg.encode_into(&mut buf);
            assert_eq!(&buf[..], &msg.encode()[..], "{msg:?}");
            assert_eq!(Message::decode_slice(&buf), Some(msg));
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(Message::decode(Bytes::new()).is_none());
        assert!(Message::decode(Bytes::from_static(&[99])).is_none());
        // Truncated tuple payload.
        assert!(Message::decode(Bytes::from_static(&[2, 0, 0])).is_none());
        // Trailing bytes after a valid message.
        assert!(Message::decode(Bytes::from_static(&[1, 0])).is_none());
    }

    #[test]
    fn tuple_counts_follow_paper_convention() {
        assert_eq!(Message::Upload(Some(sample_tuple_msg())).tuple_count(), 1);
        assert_eq!(Message::Upload(None).tuple_count(), 0);
        assert_eq!(Message::Feedback(sample_tuple_msg()).tuple_count(), 1);
        assert_eq!(Message::SurvivalReply { survival: 0.5, pruned: 0 }.tuple_count(), 0);
        assert_eq!(Message::RequestNext.tuple_count(), 0);
        assert_eq!(Message::ReplicaSync(vec![sample_tuple_msg(); 5]).tuple_count(), 5);
        // A batched feedback still ships K tuples — coalescing saves
        // messages and header bytes, never the paper's tuple unit.
        assert_eq!(Message::FeedbackBatch(vec![sample_tuple_msg(); 4]).tuple_count(), 4);
        assert_eq!(
            Message::SurvivalBatchReply { survivals: vec![0.5; 4], pruned: 2 }.tuple_count(),
            0
        );
    }

    #[test]
    fn batched_variants_share_their_scalar_classes() {
        assert_eq!(
            Message::FeedbackBatch(vec![sample_tuple_msg()]).class(),
            TrafficClass::Feedback
        );
        assert_eq!(
            Message::SurvivalBatchReply { survivals: vec![1.0], pruned: 0 }.class(),
            TrafficClass::Reply
        );
    }

    #[test]
    fn traffic_classes() {
        assert_eq!(Message::Upload(None).class(), TrafficClass::Upload);
        assert_eq!(Message::Feedback(sample_tuple_msg()).class(), TrafficClass::Feedback);
        assert_eq!(
            Message::SurvivalReply { survival: 1.0, pruned: 0 }.class(),
            TrafficClass::Reply
        );
        assert_eq!(Message::Ack.class(), TrafficClass::Control);
        assert_eq!(Message::NotifyInsert(sample_tuple_msg()).class(), TrafficClass::Maintenance);
        assert_eq!(Message::InjectInsert(sample_tuple_msg()).class(), TrafficClass::Scaffold);
    }

    /// Aggregate containers charge the paper's bandwidth unit by what they
    /// actually ship on the root link: a merged broadcast counts its
    /// payload once no matter how many member sites it addresses, while
    /// scatter parts and merged replies sum their own payloads.
    #[test]
    fn aggregate_frames_charge_merged_costs() {
        let feedback = Message::Feedback(sample_tuple_msg());
        let merged = Message::AggBroadcast {
            sites: vec![0, 1, 2, 3, 4, 5, 6, 7],
            inner: Box::new(feedback.clone()),
        };
        assert_eq!(merged.tuple_count(), 1, "payload charged once, not per member");
        assert_eq!(merged.class(), TrafficClass::Feedback);
        // The merged frame is far smaller than eight copies of the inner.
        assert!(merged.encoded_len() < 8 * feedback.encoded_len());

        let scatter = Message::AggScatter {
            parts: vec![
                (0, Message::FeedbackBatch(vec![sample_tuple_msg(); 3])),
                (5, Message::FeedbackBatch(vec![sample_tuple_msg(); 2])),
            ],
        };
        assert_eq!(scatter.tuple_count(), 5);
        assert_eq!(scatter.class(), TrafficClass::Feedback);

        let replies = Message::AggReplies {
            replies: vec![
                (0, AggReply::Ok(Box::new(Message::Upload(Some(sample_tuple_msg()))))),
                (1, AggReply::Err(LinkError::Disconnected)),
                (2, AggReply::Ok(Box::new(Message::Upload(None)))),
            ],
        };
        assert_eq!(replies.tuple_count(), 1);
        assert_eq!(replies.class(), TrafficClass::Upload);
        // Containers opt out of the columnar bytes-saved accounting; the
        // inner frames' savings are a root-link concern the topology
        // experiment measures directly.
        assert_eq!(merged.legacy_encoded_len(), None);
        assert_eq!(scatter.legacy_encoded_len(), None);

        // Round-trip through the AggReply <-> Result conversions.
        let ok = AggReply::from_result(Ok(Message::Ack));
        assert_eq!(ok.into_result(), Ok(Message::Ack));
        let err = AggReply::from_result(Err(LinkError::Timeout));
        assert_eq!(err.into_result(), Err(LinkError::Timeout));
    }

    /// Malformed aggregate frames: truncations at every section boundary,
    /// inflated counts and lengths, bad error tags, trailing bytes. Every
    /// entry must decode to `None`, never panic — the daemon answers
    /// [`Message::DecodeError`] and keeps serving.
    #[test]
    fn malformed_aggregate_frames_decode_to_none() {
        let bcast = Message::AggBroadcast {
            sites: vec![0, 1, 2],
            inner: Box::new(Message::Feedback(sample_tuple_msg())),
        }
        .encode();
        let scatter = Message::AggScatter {
            parts: vec![(0, Message::RequestNext), (1, Message::Feedback(sample_tuple_msg()))],
        }
        .encode();
        let replies = Message::AggReplies {
            replies: vec![
                (0, AggReply::Ok(Box::new(Message::Upload(None)))),
                (1, AggReply::Err(LinkError::Io("boom".into()))),
            ],
        }
        .encode();
        assert!(Message::decode_slice(&bcast).is_some());
        assert!(Message::decode_slice(&scatter).is_some());
        assert!(Message::decode_slice(&replies).is_some());

        let mut corpus: Vec<Vec<u8>> = Vec::new();
        // Bare tags and truncated counts.
        for tag in [29u8, 30, 31] {
            corpus.push(vec![tag]);
            corpus.push(vec![tag, 0, 0]);
        }
        // AggBroadcast: truncated site list, missing inner, trailing byte,
        // inflated site count.
        for cut in [5, 8, 17, bcast.len() - 1] {
            corpus.push(bcast[..cut].to_vec());
        }
        let mut long = bcast.to_vec();
        long.push(0);
        corpus.push(long);
        let mut inflated = bcast.to_vec();
        inflated[1..5].copy_from_slice(&1000u32.to_be_bytes());
        corpus.push(inflated);
        // AggScatter: cut mid part header, mid part payload, inflated part
        // length (overruns the frame), deflated part length (leaves
        // trailing bytes in the part slice).
        for cut in [6, 12, scatter.len() - 1] {
            corpus.push(scatter[..cut].to_vec());
        }
        for len in [1000u32, 0] {
            let mut bad = scatter.to_vec();
            bad[9..13].copy_from_slice(&len.to_be_bytes());
            corpus.push(bad);
        }
        // AggReplies: cut mid entry, bad outcome tag, inflated ok length,
        // invalid utf-8 in an Io detail.
        for cut in [6, 10, replies.len() - 1] {
            corpus.push(replies[..cut].to_vec());
        }
        // Layout: [tag][count u32][site u32][reply tag u8][ok len u32]...
        let mut bad_tag = replies.to_vec();
        bad_tag[9] = 9;
        corpus.push(bad_tag);
        let mut bad_len = replies.to_vec();
        bad_len[10..14].copy_from_slice(&1000u32.to_be_bytes());
        corpus.push(bad_len);
        let mut bad_utf8 = replies.to_vec();
        let io_detail_at = replies.len() - 4; // "boom" is the last payload
        bad_utf8[io_detail_at] = 0xff;
        corpus.push(bad_utf8);
        for (i, frame) in corpus.iter().enumerate() {
            assert!(
                Message::decode_slice(frame).is_none(),
                "aggregate corpus entry {i} must reject: {frame:?}"
            );
        }
    }

    #[test]
    fn tuple_msg_roundtrips_to_uncertain_tuple() {
        let msg = sample_tuple_msg();
        let t = msg.to_tuple();
        assert_eq!(t.id(), TupleId::new(3, 17));
        assert_eq!(t.values(), &[6.0, 6.5, 7.0]);
        assert_eq!(t.prob().get(), 0.7);
    }
}
