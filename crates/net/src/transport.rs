//! Server-to-site transports: the [`Service`] trait a site implements and
//! the metered [`Link`] request/reply channel the coordinator talks through,
//! with in-process and per-site-thread implementations. Every call is
//! recorded on the shared [`BandwidthMeter`], so algorithm code never
//! touches traffic accounting.

use std::thread::JoinHandle;

use crossbeam::channel::{bounded, Receiver, Sender};

use crate::{BandwidthMeter, Message};

/// A site-side protocol endpoint: consumes one request, produces one reply.
///
/// `dsud-core`'s local sites implement this trait; the transports below
/// decide whether the service runs inline or on its own thread.
pub trait Service: Send {
    /// Handles one request and produces the reply.
    fn handle(&mut self, msg: Message) -> Message;
}

impl<F> Service for F
where
    F: FnMut(Message) -> Message + Send,
{
    fn handle(&mut self, msg: Message) -> Message {
        self(msg)
    }
}

/// A metered request/response channel from the central server to one site.
///
/// All implementations record every request and reply on the shared
/// [`BandwidthMeter`], so algorithm code never touches accounting.
///
/// Besides the synchronous [`Link::call`], links support a split
/// [`Link::begin`] / [`Link::complete`] pair so a coordinator can put one
/// request *per site* in flight and collect the replies afterwards — with
/// the threaded and TCP transports the sites then compute concurrently,
/// which is how a real deployment fans out its feedback broadcasts.
/// At most one request may be outstanding per link.
///
/// Links are `Send` so [`broadcast`] can drive inline transports from the
/// coordinator's thread pool.
pub trait Link: Send {
    /// Sends a request to the site and waits for its reply.
    fn call(&mut self, msg: Message) -> Message;

    /// Dispatches a request without waiting for the reply.
    ///
    /// # Panics
    ///
    /// Implementations panic if a request is already outstanding.
    fn begin(&mut self, msg: Message);

    /// Collects the reply to the outstanding request.
    ///
    /// # Panics
    ///
    /// Implementations panic if no request is outstanding.
    fn complete(&mut self) -> Message;
}

/// Puts `msg` in flight on every link selected by `include`, then collects
/// the replies in link order.
///
/// With a thread pool larger than one, each selected link is driven from
/// its own scoped thread, so even *inline* transports (whose [`Link::begin`]
/// computes eagerly on the caller's stack) process the request
/// concurrently. With a pool of one — the documented sequential fallback —
/// the begin-all/complete-all pattern is used instead, which still overlaps
/// transports that are concurrent by construction (threaded, TCP).
///
/// Either way the reply vector is ordered by link index and each reply is
/// produced by the same per-site computation, so results are identical for
/// every pool size.
pub fn broadcast<F>(links: &mut [Box<dyn Link>], include: F, msg: &Message) -> Vec<(usize, Message)>
where
    F: Fn(usize) -> bool,
{
    let selected: Vec<(usize, &mut Box<dyn Link>)> =
        links.iter_mut().enumerate().filter(|(i, _)| include(*i)).collect();
    if threadpool::pool_size() > 1 && selected.len() > 1 {
        let mut replies = Vec::with_capacity(selected.len());
        threadpool::scope(|s| {
            let handles: Vec<_> = selected
                .into_iter()
                .map(|(i, link)| s.spawn(move || (i, link.call(msg.clone()))))
                .collect();
            for h in handles {
                replies.push(h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)));
            }
        });
        return replies;
    }
    let mut pending = Vec::with_capacity(selected.len());
    for (i, link) in selected {
        link.begin(msg.clone());
        pending.push((i, link));
    }
    pending.into_iter().map(|(i, link)| (i, link.complete())).collect()
}

/// Deterministic in-process transport: the service runs inline on the
/// caller's stack. Used by tests and the benchmark harness, where
/// reproducibility matters more than concurrency.
pub struct LocalLink<S> {
    service: S,
    meter: BandwidthMeter,
    pending: Option<Message>,
}

impl<S: Service> LocalLink<S> {
    /// Wraps a service with metering.
    pub fn new(service: S, meter: BandwidthMeter) -> Self {
        LocalLink { service, meter, pending: None }
    }

    /// Consumes the link, returning the wrapped service.
    pub fn into_inner(self) -> S {
        self.service
    }
}

impl<S: Service> Link for LocalLink<S> {
    fn call(&mut self, msg: Message) -> Message {
        assert!(self.pending.is_none(), "request already outstanding");
        self.meter.record(&msg);
        let reply = self.service.handle(msg);
        self.meter.record(&reply);
        reply
    }

    // The inline transport has no concurrency to exploit: `begin` computes
    // eagerly and buffers the reply.
    fn begin(&mut self, msg: Message) {
        assert!(self.pending.is_none(), "request already outstanding");
        self.meter.record(&msg);
        let reply = self.service.handle(msg);
        self.meter.record(&reply);
        self.pending = Some(reply);
    }

    fn complete(&mut self) -> Message {
        self.pending.take().expect("no outstanding request")
    }
}

impl<S: std::fmt::Debug> std::fmt::Debug for LocalLink<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LocalLink").field("service", &self.service).finish_non_exhaustive()
    }
}

/// Threaded transport: the service runs on its own OS thread and exchanges
/// messages over bounded crossbeam channels, like a site across a LAN.
///
/// Messages cross the thread boundary in their binary wire encoding, so the
/// transport exercises the same serialization path a socket would.
#[derive(Debug)]
pub struct ChannelLink {
    tx: Option<Sender<bytes::Bytes>>,
    rx: Receiver<bytes::Bytes>,
    meter: BandwidthMeter,
    worker: Option<JoinHandle<()>>,
    in_flight: bool,
}

impl ChannelLink {
    /// Spawns the service on a dedicated thread.
    pub fn spawn<S: Service + 'static>(mut service: S, meter: BandwidthMeter) -> Self {
        let (req_tx, req_rx) = bounded::<bytes::Bytes>(1);
        let (rep_tx, rep_rx) = bounded::<bytes::Bytes>(1);
        let worker = std::thread::spawn(move || {
            while let Ok(frame) = req_rx.recv() {
                let msg = Message::decode(frame).expect("transport frames are well-formed");
                let reply = service.handle(msg);
                if rep_tx.send(reply.encode()).is_err() {
                    break;
                }
            }
        });
        ChannelLink { tx: Some(req_tx), rx: rep_rx, meter, worker: Some(worker), in_flight: false }
    }
}

impl Link for ChannelLink {
    /// # Panics
    ///
    /// Panics if the site thread has died (a bug, not an expected runtime
    /// condition — the simulated network has no packet loss).
    fn call(&mut self, msg: Message) -> Message {
        self.begin(msg);
        self.complete()
    }

    fn begin(&mut self, msg: Message) {
        assert!(!self.in_flight, "request already outstanding");
        self.meter.record(&msg);
        self.tx.as_ref().expect("link is open").send(msg.encode()).expect("site thread is alive");
        self.in_flight = true;
    }

    fn complete(&mut self) -> Message {
        assert!(self.in_flight, "no outstanding request");
        self.in_flight = false;
        let frame = self.rx.recv().expect("site thread is alive");
        let reply = Message::decode(frame).expect("transport frames are well-formed");
        self.meter.record(&reply);
        reply
    }
}

impl Drop for ChannelLink {
    fn drop(&mut self) {
        // Closing the request channel ends the worker loop.
        self.tx.take();
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

/// Fault-injecting wrapper around any [`Link`], for robustness testing.
///
/// After `healthy_calls` successful round-trips the link starts misbehaving
/// according to its [`FaultMode`]. Coordinators must surface such faults as
/// protocol errors instead of panicking or hanging.
#[derive(Debug)]
pub struct FaultyLink<L> {
    inner: L,
    mode: FaultMode,
    healthy_calls: u64,
    calls: u64,
}

/// What a [`FaultyLink`] does once its healthy budget is exhausted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultMode {
    /// Replies `Ack` to everything — a site that lost its state.
    WrongReply,
    /// Replies with garbage survival values (NaN) — a corrupted computation.
    CorruptSurvival,
}

impl<L: Link> FaultyLink<L> {
    /// Wraps `inner`, letting `healthy_calls` round-trips through before
    /// faulting with `mode`.
    pub fn new(inner: L, mode: FaultMode, healthy_calls: u64) -> Self {
        FaultyLink { inner, mode, healthy_calls, calls: 0 }
    }

    /// Round-trips performed so far.
    pub fn calls(&self) -> u64 {
        self.calls
    }
}

impl<L: Link> FaultyLink<L> {
    fn corrupt(&self, reply: Message) -> Option<Message> {
        if self.calls <= self.healthy_calls {
            return None;
        }
        Some(match self.mode {
            FaultMode::WrongReply => Message::Ack,
            FaultMode::CorruptSurvival => match reply {
                Message::SurvivalReply { pruned, .. } => {
                    Message::SurvivalReply { survival: f64::NAN, pruned }
                }
                other => other,
            },
        })
    }
}

impl<L: Link> Link for FaultyLink<L> {
    fn call(&mut self, msg: Message) -> Message {
        self.calls += 1;
        if self.calls <= self.healthy_calls {
            return self.inner.call(msg);
        }
        if self.mode == FaultMode::WrongReply {
            return Message::Ack;
        }
        // Still consult the real service (keeps its state moving), then
        // corrupt the numeric payload.
        let reply = self.inner.call(msg);
        self.corrupt(reply.clone()).unwrap_or(reply)
    }

    fn begin(&mut self, msg: Message) {
        self.calls += 1;
        // Always drive the inner link so the outstanding-request state
        // machine stays consistent; faults apply on completion.
        self.inner.begin(msg);
    }

    fn complete(&mut self) -> Message {
        let reply = self.inner.complete();
        self.corrupt(reply.clone()).unwrap_or(reply)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TupleMsg;
    use dsud_uncertain::{Probability, TupleId, UncertainTuple};

    fn echo_service() -> impl Service {
        |msg: Message| match msg {
            Message::RequestNext => Message::Upload(None),
            Message::Feedback(t) => Message::SurvivalReply { survival: t.local_prob, pruned: 0 },
            _ => Message::Ack,
        }
    }

    fn feedback_msg(local_prob: f64) -> Message {
        let t =
            UncertainTuple::new(TupleId::new(0, 0), vec![1.0, 1.0], Probability::new(0.5).unwrap())
                .unwrap();
        Message::Feedback(TupleMsg::new(&t, local_prob))
    }

    #[test]
    fn local_link_meters_both_directions() {
        let meter = BandwidthMeter::new();
        let mut link = LocalLink::new(echo_service(), meter.clone());
        let reply = link.call(feedback_msg(0.25));
        assert_eq!(reply, Message::SurvivalReply { survival: 0.25, pruned: 0 });
        let snap = meter.snapshot();
        assert_eq!(snap.feedback.messages, 1);
        assert_eq!(snap.reply.messages, 1);
        assert_eq!(snap.tuples_transmitted(), 1);
    }

    #[test]
    fn channel_link_round_trips() {
        let meter = BandwidthMeter::new();
        let mut link = ChannelLink::spawn(echo_service(), meter.clone());
        for i in 0..10 {
            let reply = link.call(feedback_msg(i as f64 / 100.0));
            assert_eq!(reply, Message::SurvivalReply { survival: i as f64 / 100.0, pruned: 0 });
        }
        assert_eq!(meter.snapshot().feedback.messages, 10);
        drop(link); // must join cleanly
    }

    #[test]
    fn channel_and_local_links_meter_identically() {
        let meter_a = BandwidthMeter::new();
        let meter_b = BandwidthMeter::new();
        let mut local = LocalLink::new(echo_service(), meter_a.clone());
        let mut channel = ChannelLink::spawn(echo_service(), meter_b.clone());
        for _ in 0..5 {
            local.call(Message::RequestNext);
            channel.call(Message::RequestNext);
        }
        assert_eq!(meter_a.snapshot(), meter_b.snapshot());
    }

    #[test]
    fn faulty_link_misbehaves_on_schedule() {
        let meter = BandwidthMeter::new();
        let inner = LocalLink::new(echo_service(), meter);
        let mut link = FaultyLink::new(inner, FaultMode::WrongReply, 2);
        assert_eq!(link.call(Message::RequestNext), Message::Upload(None));
        assert_eq!(link.call(Message::RequestNext), Message::Upload(None));
        assert_eq!(link.call(Message::RequestNext), Message::Ack);
        assert_eq!(link.calls(), 3);
    }

    #[test]
    fn corrupt_survival_produces_nan() {
        let meter = BandwidthMeter::new();
        let inner = LocalLink::new(echo_service(), meter);
        let mut link = FaultyLink::new(inner, FaultMode::CorruptSurvival, 0);
        match link.call(feedback_msg(0.5)) {
            Message::SurvivalReply { survival, .. } => assert!(survival.is_nan()),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn broadcast_overlaps_slow_sites() {
        // Each site sleeps 30 ms per request; a parallel broadcast to 8
        // sites must take far less than the 240 ms a sequential fan-out
        // would need.
        let slow_service = || {
            |msg: Message| {
                std::thread::sleep(std::time::Duration::from_millis(30));
                match msg {
                    Message::Feedback(t) => {
                        Message::SurvivalReply { survival: t.local_prob, pruned: 0 }
                    }
                    _ => Message::Ack,
                }
            }
        };
        let meter = BandwidthMeter::new();
        let mut links: Vec<Box<dyn Link>> = (0..8)
            .map(|_| Box::new(ChannelLink::spawn(slow_service(), meter.clone())) as _)
            .collect();
        let started = std::time::Instant::now();
        let replies = broadcast(&mut links, |_| true, &feedback_msg(0.5));
        let elapsed = started.elapsed();
        assert_eq!(replies.len(), 8);
        for (_, reply) in &replies {
            assert!(matches!(reply, Message::SurvivalReply { .. }));
        }
        assert!(
            elapsed < std::time::Duration::from_millis(150),
            "broadcast took {elapsed:?}, expected parallel overlap"
        );
    }

    #[test]
    fn broadcast_replies_are_pool_size_invariant() {
        // Stateful inline services: each reply depends on how many
        // requests the site has seen, so any reordering or dropped call
        // would change the transcript.
        let make_links = || -> Vec<Box<dyn Link>> {
            let meter = BandwidthMeter::new();
            (0..6)
                .map(|site| {
                    let mut seen = 0u64;
                    let service = move |_msg: Message| {
                        seen += 1;
                        Message::SurvivalReply { survival: (site * 100 + seen) as f64, pruned: 0 }
                    };
                    Box::new(LocalLink::new(service, meter.clone())) as _
                })
                .collect()
        };
        let reference = {
            threadpool::set_pool_size(1);
            let mut links = make_links();
            let mut rounds = Vec::new();
            for _ in 0..3 {
                rounds.push(broadcast(&mut links, |i| i != 1, &Message::RequestNext));
            }
            threadpool::set_pool_size(0);
            rounds
        };
        for pool in [2usize, 8] {
            threadpool::set_pool_size(pool);
            let mut links = make_links();
            let mut rounds = Vec::new();
            for _ in 0..3 {
                rounds.push(broadcast(&mut links, |i| i != 1, &Message::RequestNext));
            }
            threadpool::set_pool_size(0);
            assert_eq!(rounds, reference, "pool {pool}");
        }
    }

    #[test]
    fn broadcast_respects_include_filter() {
        let meter = BandwidthMeter::new();
        let mut links: Vec<Box<dyn Link>> =
            (0..4).map(|_| Box::new(LocalLink::new(echo_service(), meter.clone())) as _).collect();
        let replies = broadcast(&mut links, |i| i != 2, &Message::RequestNext);
        let indices: Vec<usize> = replies.iter().map(|(i, _)| *i).collect();
        assert_eq!(indices, vec![0, 1, 3]);
    }

    #[test]
    #[should_panic(expected = "request already outstanding")]
    fn double_begin_panics() {
        let meter = BandwidthMeter::new();
        let mut link = LocalLink::new(echo_service(), meter);
        link.begin(Message::RequestNext);
        link.begin(Message::RequestNext);
    }

    #[test]
    fn many_concurrent_sites() {
        let meter = BandwidthMeter::new();
        let mut links: Vec<ChannelLink> =
            (0..32).map(|_| ChannelLink::spawn(echo_service(), meter.clone())).collect();
        for link in &mut links {
            assert_eq!(link.call(Message::RequestNext), Message::Upload(None));
        }
        assert_eq!(meter.snapshot().control.messages, 32);
        assert_eq!(meter.snapshot().upload.messages, 32);
    }
}
