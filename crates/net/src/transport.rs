//! Server-to-site transports: the [`Service`] trait a site implements and
//! the metered [`Link`] request/reply channel the coordinator talks through,
//! with in-process and per-site-thread implementations. Every call is
//! recorded on the shared [`BandwidthMeter`], so algorithm code never
//! touches traffic accounting.
//!
//! Failure is a value here, not a panic: every link operation returns
//! `Result<_, LinkError>`, the threaded and TCP transports enforce real
//! request deadlines from a [`LinkConfig`], and the
//! [`RetryLink`](crate::RetryLink) wrapper turns transient faults into
//! deterministic retries.

use std::collections::VecDeque;
use std::fmt;
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender};
use serde::{Deserialize, Serialize};

use crate::{BandwidthMeter, Message};

/// Why a link operation failed.
///
/// Transport failures are ordinary values: coordinators decide whether to
/// retry ([`RetryLink`](crate::RetryLink)), quarantine the site (degraded
/// mode), or abort the query (strict mode). The `Io` payload is the error's
/// rendered text rather than an [`std::io::Error`] so the type stays
/// cloneable, comparable, and serializable into run outcomes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum LinkError {
    /// No reply arrived within the configured request deadline.
    Timeout,
    /// The connection or site thread is gone.
    Disconnected,
    /// A frame could not be decoded (on either side of the link).
    Malformed,
    /// Any other socket-level failure, with the rendered I/O error.
    Io(String),
}

impl fmt::Display for LinkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinkError::Timeout => write!(f, "request deadline elapsed"),
            LinkError::Disconnected => write!(f, "site disconnected"),
            LinkError::Malformed => write!(f, "malformed frame"),
            LinkError::Io(detail) => write!(f, "i/o error: {detail}"),
        }
    }
}

impl std::error::Error for LinkError {}

impl From<std::io::Error> for LinkError {
    fn from(e: std::io::Error) -> Self {
        match e.kind() {
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => LinkError::Timeout,
            std::io::ErrorKind::ConnectionReset
            | std::io::ErrorKind::ConnectionAborted
            | std::io::ErrorKind::ConnectionRefused
            | std::io::ErrorKind::BrokenPipe
            | std::io::ErrorKind::UnexpectedEof
            | std::io::ErrorKind::NotConnected => LinkError::Disconnected,
            _ => LinkError::Io(e.to_string()),
        }
    }
}

/// Per-link failure-handling knobs: the request deadline and the retry
/// policy a [`RetryLink`](crate::RetryLink) applies on top of it.
///
/// Backoff is deterministic — the pause before retry `k` (1-based) is
/// `backoff * k`, a pure function of the attempt index with no wall-clock
/// randomness, so fault schedules replay identically across runs, pool
/// sizes, and transports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkConfig {
    /// How long a single request may wait for its reply.
    pub request_timeout: Duration,
    /// How many *re*-attempts a [`RetryLink`](crate::RetryLink) makes after
    /// the first failure before giving up (0 = fail fast).
    pub retry_budget: u32,
    /// Base backoff unit; retry `k` sleeps `backoff * k`.
    pub backoff: Duration,
}

impl Default for LinkConfig {
    fn default() -> Self {
        LinkConfig {
            // Generous enough that a loaded CI machine never trips it on a
            // healthy site; a dead site still fails in bounded time.
            request_timeout: Duration::from_secs(10),
            retry_budget: 2,
            backoff: Duration::from_millis(10),
        }
    }
}

impl LinkConfig {
    /// The deterministic pause before retry `attempt` (1-based): linear
    /// backoff `backoff * attempt`.
    pub fn backoff_step(&self, attempt: u32) -> Duration {
        self.backoff.saturating_mul(attempt)
    }
}

/// A site-side protocol endpoint: consumes one request, produces one reply.
///
/// `dsud-core`'s local sites implement this trait; the transports below
/// decide whether the service runs inline or on its own thread.
pub trait Service: Send {
    /// Handles one request and produces the reply.
    fn handle(&mut self, msg: Message) -> Message;

    /// Handles one *encoded* request frame, writing the encoded reply into
    /// `out` (cleared first).
    ///
    /// This is the entry point the framed transports (channel worker, TCP
    /// serve loops) drive, so a service that understands the columnar wire
    /// layout can answer a bulk frame directly from its borrowed bytes —
    /// no intermediate [`Message`] materialization — and encode the reply
    /// straight into the transport's reusable buffer. The default decodes,
    /// dispatches to [`Service::handle`], and re-encodes; a frame that does
    /// not decode must not kill the site, so it answers with
    /// [`Message::DecodeError`] and keeps serving.
    fn handle_frame(&mut self, frame: &[u8], out: &mut bytes::BytesMut) {
        let reply = match Message::decode_slice(frame) {
            Some(msg) => self.handle(msg),
            None => Message::DecodeError,
        };
        reply.encode_into(out);
    }
}

impl<F> Service for F
where
    F: FnMut(Message) -> Message + Send,
{
    fn handle(&mut self, msg: Message) -> Message {
        self(msg)
    }
}

/// Receipt for a request put in flight with [`Link::send`], redeemed for
/// its reply with [`Link::complete`].
///
/// Tickets are per-link sequence numbers: the `k`-th successful `send` on a
/// link returns ticket `k`, and tickets must be completed in send order
/// (the transports assert this — completing out of order would pair replies
/// with the wrong requests on an in-order wire). A ticket is consumed by
/// `complete` whether the reply arrives intact or not, and every
/// outstanding ticket is invalidated by [`Link::reconnect`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ticket(u64);

/// Per-link FIFO ticket bookkeeping shared by the transport
/// implementations: issues sequence-numbered tickets and asserts they are
/// redeemed in send order.
#[derive(Debug, Default)]
pub(crate) struct TicketLedger {
    issued: u64,
    redeemed: u64,
}

impl TicketLedger {
    pub(crate) fn issue(&mut self) -> Ticket {
        let t = Ticket(self.issued);
        self.issued += 1;
        t
    }

    pub(crate) fn redeem(&mut self, ticket: Ticket) {
        assert!(
            ticket.0 == self.redeemed && ticket.0 < self.issued,
            "tickets must be completed in send order"
        );
        self.redeemed += 1;
    }

    /// Requests sent but not yet completed.
    pub(crate) fn outstanding(&self) -> u64 {
        self.issued - self.redeemed
    }

    /// Abandons every outstanding ticket (they will no longer redeem).
    pub(crate) fn reset(&mut self) {
        self.redeemed = self.issued;
    }
}

/// A metered request/response channel from the central server to one site.
///
/// All implementations record every request and reply on the shared
/// [`BandwidthMeter`], so algorithm code never touches accounting.
///
/// The API is split-phase: [`Link::send`] puts a request in flight and
/// returns a [`Ticket`]; [`Link::complete`] redeems the ticket for the
/// reply. A coordinator can therefore keep several requests outstanding
/// per link — a survival scatter for round `r` plus the refill for round
/// `r+1` — and the threaded and TCP transports then genuinely overlap the
/// site computations. [`Link::call`] is the trivial send-then-complete
/// composition for the synchronous case. Requests travel an in-order wire,
/// so tickets must be completed in per-link send order (implementations
/// assert this).
///
/// Transport failures — deadlines, disconnects, undecodable frames — are
/// returned as [`LinkError`] values, never panics: a dead site must not
/// take the coordinator down with it.
///
/// Links are `Send` so [`broadcast`] can drive inline transports from the
/// coordinator's thread pool.
pub trait Link: Send {
    /// Dispatches a request without waiting for the reply.
    ///
    /// # Errors
    ///
    /// Returns a [`LinkError`] when the request cannot be sent. A failed
    /// `send` issues no ticket and leaves nothing outstanding.
    fn send(&mut self, msg: Message) -> Result<Ticket, LinkError>;

    /// Redeems a ticket for the reply to its request.
    ///
    /// # Errors
    ///
    /// Returns a [`LinkError`] when the reply does not arrive intact within
    /// the deadline. The ticket is consumed either way.
    ///
    /// # Panics
    ///
    /// Implementations panic when tickets are completed out of send order
    /// or a ticket is redeemed twice (a coordinator bug, not a runtime
    /// condition).
    fn complete(&mut self, ticket: Ticket) -> Result<Message, LinkError>;

    /// Sends a request to the site and waits for its reply: the trivial
    /// [`Link::send`] / [`Link::complete`] composition.
    ///
    /// # Errors
    ///
    /// Returns a [`LinkError`] when the transport fails.
    fn call(&mut self, msg: Message) -> Result<Message, LinkError> {
        let ticket = self.send(msg)?;
        self.complete(ticket)
    }

    /// Attempts to re-establish the underlying transport after a failure.
    /// Every outstanding ticket is abandoned: its reply will never be
    /// redeemable, and redeeming it panics.
    ///
    /// The default is a no-op `Ok(())` for transports with nothing to
    /// re-establish (inline links). [`TcpLink`](crate::tcp::TcpLink)
    /// re-dials its stored address; [`ChannelLink`] reports
    /// [`LinkError::Disconnected`] if its worker thread is gone (a thread
    /// cannot be respawned from here).
    ///
    /// # Errors
    ///
    /// Returns a [`LinkError`] when the transport cannot be restored.
    fn reconnect(&mut self) -> Result<(), LinkError> {
        Ok(())
    }
}

impl<L: Link + ?Sized> Link for Box<L> {
    fn send(&mut self, msg: Message) -> Result<Ticket, LinkError> {
        (**self).send(msg)
    }

    fn complete(&mut self, ticket: Ticket) -> Result<Message, LinkError> {
        (**self).complete(ticket)
    }

    fn call(&mut self, msg: Message) -> Result<Message, LinkError> {
        (**self).call(msg)
    }

    fn reconnect(&mut self) -> Result<(), LinkError> {
        (**self).reconnect()
    }
}

/// Puts `msg` in flight on every link selected by `include`, then collects
/// the replies in link order.
///
/// With a thread pool larger than one, each selected link is driven from
/// its own scoped thread, so even *inline* transports (whose [`Link::send`]
/// computes eagerly on the caller's stack) process the request
/// concurrently. With a pool of one — the documented sequential fallback —
/// the send-all/complete-all pattern is used instead, which still overlaps
/// transports that are concurrent by construction (threaded, TCP).
///
/// Either way the reply vector is ordered by link index and each reply is
/// produced by the same per-site computation, so results — including which
/// links failed, and how — are identical for every pool size.
pub fn broadcast<F>(
    links: &mut [Box<dyn Link>],
    include: F,
    msg: &Message,
) -> Vec<(usize, Result<Message, LinkError>)>
where
    F: Fn(usize) -> bool,
{
    let selected: Vec<(usize, &mut Box<dyn Link>)> =
        links.iter_mut().enumerate().filter(|(i, _)| include(*i)).collect();
    if threadpool::pool_size() > 1 && selected.len() > 1 {
        let mut replies = Vec::with_capacity(selected.len());
        threadpool::scope(|s| {
            let handles: Vec<_> = selected
                .into_iter()
                .map(|(i, link)| s.spawn(move || (i, link.call(msg.clone()))))
                .collect();
            for h in handles {
                replies.push(h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)));
            }
        });
        return replies;
    }
    // Sequential fallback: a failed send has no reply to collect, so its
    // error is recorded in reply position, matching the parallel path.
    let mut pending: Vec<(usize, Result<(Ticket, &mut Box<dyn Link>), LinkError>)> =
        Vec::with_capacity(selected.len());
    for (i, link) in selected {
        match link.send(msg.clone()) {
            Ok(ticket) => pending.push((i, Ok((ticket, link)))),
            Err(e) => pending.push((i, Err(e))),
        }
    }
    pending
        .into_iter()
        .map(|(i, slot)| match slot {
            Ok((ticket, link)) => (i, link.complete(ticket)),
            Err(e) => (i, Err(e)),
        })
        .collect()
}

/// Sends a *different* message to each listed link concurrently and
/// collects the replies in request order.
///
/// This is the fan-out primitive behind batched feedback delivery: at the
/// end of a batched round the coordinator sends each site its own
/// coalesced [`Message::FeedbackBatch`] frame, so the per-site payloads
/// differ but the round still completes in one parallel wave. Reply
/// ordering and error placement mirror [`broadcast`] exactly (scoped
/// parallel `call` when the pool has more than one worker and more than
/// one request is in flight; otherwise send-all then complete-all), so
/// outcomes are identical at every pool size.
///
/// # Panics
///
/// Panics if two requests name the same link index — each link carries at
/// most one outstanding request.
pub fn scatter(
    links: &mut [Box<dyn Link>],
    requests: Vec<(usize, Message)>,
) -> Vec<(usize, Result<Message, LinkError>)> {
    let mut wanted: Vec<Option<Message>> = (0..links.len()).map(|_| None).collect();
    for (i, msg) in requests {
        assert!(wanted[i].replace(msg).is_none(), "duplicate scatter target {i}");
    }
    let selected: Vec<(usize, Message, &mut Box<dyn Link>)> = links
        .iter_mut()
        .enumerate()
        .filter_map(|(i, link)| wanted[i].take().map(|msg| (i, msg, link)))
        .collect();
    if threadpool::pool_size() > 1 && selected.len() > 1 {
        let mut replies = Vec::with_capacity(selected.len());
        threadpool::scope(|s| {
            let handles: Vec<_> = selected
                .into_iter()
                .map(|(i, msg, link)| s.spawn(move || (i, link.call(msg))))
                .collect();
            for h in handles {
                replies.push(h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)));
            }
        });
        return replies;
    }
    let mut pending: Vec<(usize, Result<(Ticket, &mut Box<dyn Link>), LinkError>)> =
        Vec::with_capacity(selected.len());
    for (i, msg, link) in selected {
        match link.send(msg) {
            Ok(ticket) => pending.push((i, Ok((ticket, link)))),
            Err(e) => pending.push((i, Err(e))),
        }
    }
    pending
        .into_iter()
        .map(|(i, slot)| match slot {
            Ok((ticket, link)) => (i, link.complete(ticket)),
            Err(e) => (i, Err(e)),
        })
        .collect()
}

/// Decodes a reply frame on the coordinator side, charging the wall-clock
/// cost to [`dsud_obs::Counter::DecodeNs`] when a recorder is attached.
///
/// Only the off-thread transports (channel, TCP) pass through here — the
/// inline transport hands the reply over as a value and never decodes, so
/// its runs honestly report `decode_ns == 0`.
pub(crate) fn decode_reply_timed(meter: &BandwidthMeter, frame: &[u8]) -> Option<Message> {
    let recorder = meter.recorder();
    if !recorder.is_enabled() {
        return Message::decode_slice(frame);
    }
    let started = std::time::Instant::now();
    let decoded = Message::decode_slice(frame);
    recorder.add(dsud_obs::Counter::DecodeNs, started.elapsed().as_nanos() as u64);
    decoded
}

/// Deterministic in-process transport: the service runs inline on the
/// caller's stack. Used by tests and the benchmark harness, where
/// reproducibility matters more than concurrency.
pub struct LocalLink<S> {
    service: S,
    meter: BandwidthMeter,
    /// Eagerly computed replies awaiting completion, in send order.
    replies: VecDeque<Message>,
    tickets: TicketLedger,
}

impl<S: Service> LocalLink<S> {
    /// Wraps a service with metering.
    pub fn new(service: S, meter: BandwidthMeter) -> Self {
        LocalLink { service, meter, replies: VecDeque::new(), tickets: TicketLedger::default() }
    }

    /// Consumes the link, returning the wrapped service.
    pub fn into_inner(self) -> S {
        self.service
    }
}

impl<S: Service> Link for LocalLink<S> {
    // The inline transport has no concurrency to exploit: `send` computes
    // eagerly and buffers the reply until its ticket is redeemed.
    fn send(&mut self, msg: Message) -> Result<Ticket, LinkError> {
        self.meter.record(&msg);
        let reply = self.service.handle(msg);
        self.meter.record(&reply);
        self.replies.push_back(reply);
        Ok(self.tickets.issue())
    }

    fn complete(&mut self, ticket: Ticket) -> Result<Message, LinkError> {
        self.tickets.redeem(ticket);
        Ok(self.replies.pop_front().expect("a redeemed ticket has a buffered reply"))
    }

    fn reconnect(&mut self) -> Result<(), LinkError> {
        self.replies.clear();
        self.tickets.reset();
        Ok(())
    }
}

impl<S: std::fmt::Debug> std::fmt::Debug for LocalLink<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LocalLink").field("service", &self.service).finish_non_exhaustive()
    }
}

/// Threaded transport: the service runs on its own OS thread and exchanges
/// messages over bounded crossbeam channels, like a site across a LAN.
///
/// Messages cross the thread boundary in their binary wire encoding, so the
/// transport exercises the same serialization path a socket would. Replies
/// are awaited with `recv_timeout` against the link's
/// [`LinkConfig::request_timeout`], so a stalled or dead site thread
/// surfaces as [`LinkError::Timeout`] / [`LinkError::Disconnected`] instead
/// of hanging the coordinator forever.
#[derive(Debug)]
pub struct ChannelLink {
    tx: Option<Sender<bytes::Bytes>>,
    rx: Receiver<bytes::Bytes>,
    meter: BandwidthMeter,
    config: LinkConfig,
    worker: Option<JoinHandle<()>>,
    tickets: TicketLedger,
    // Replies owed for requests we timed out on or abandoned at reconnect:
    // they arrive (in order) ahead of the reply to the current request and
    // must be discarded.
    stale_replies: u64,
    // Set once either channel reports the worker gone; `is_finished` alone
    // races against the worker's unwinding.
    dead: bool,
}

/// Capacity of the request and reply channels, and therefore the most
/// requests a [`ChannelLink`] can keep in flight without blocking the
/// sender. The pipelined coordinators keep at most two outstanding per
/// link; [`ChannelLink::send`] asserts the bound so a runaway window shows
/// up as a panic rather than a deadlock.
const CHANNEL_DEPTH: usize = 16;

impl ChannelLink {
    /// Spawns the service on a dedicated thread with the default
    /// [`LinkConfig`].
    pub fn spawn<S: Service + 'static>(service: S, meter: BandwidthMeter) -> Self {
        Self::spawn_with(service, meter, LinkConfig::default())
    }

    /// Spawns the service on a dedicated thread with an explicit deadline
    /// configuration.
    pub fn spawn_with<S: Service + 'static>(
        mut service: S,
        meter: BandwidthMeter,
        config: LinkConfig,
    ) -> Self {
        let (req_tx, req_rx) = bounded::<bytes::Bytes>(CHANNEL_DEPTH);
        let (rep_tx, rep_rx) = bounded::<bytes::Bytes>(CHANNEL_DEPTH);
        let worker = std::thread::spawn(move || {
            // `handle_frame` lets the service answer columnar bulk frames
            // straight from the borrowed request bytes; the encoded reply
            // is then frozen and moved into the channel (the receiver owns
            // it, so the buffer itself cannot be recycled here).
            let mut out = bytes::BytesMut::new();
            while let Ok(frame) = req_rx.recv() {
                service.handle_frame(&frame, &mut out);
                if rep_tx.send(std::mem::take(&mut out).freeze()).is_err() {
                    break;
                }
            }
        });
        ChannelLink {
            tx: Some(req_tx),
            rx: rep_rx,
            meter,
            config,
            worker: Some(worker),
            tickets: TicketLedger::default(),
            stale_replies: 0,
            dead: false,
        }
    }

    fn recv_reply(&mut self) -> Result<bytes::Bytes, LinkError> {
        loop {
            let frame = self.rx.recv_timeout(self.config.request_timeout).map_err(|e| match e {
                RecvTimeoutError::Timeout => {
                    // The reply may still arrive for this request; remember
                    // to discard it before reading any future reply.
                    self.stale_replies += 1;
                    LinkError::Timeout
                }
                RecvTimeoutError::Disconnected => {
                    self.dead = true;
                    LinkError::Disconnected
                }
            })?;
            if self.stale_replies > 0 {
                self.stale_replies -= 1;
                continue;
            }
            return Ok(frame);
        }
    }
}

impl Link for ChannelLink {
    fn send(&mut self, msg: Message) -> Result<Ticket, LinkError> {
        assert!(
            self.tickets.outstanding() < CHANNEL_DEPTH as u64,
            "per-link in-flight window exceeds channel depth"
        );
        let tx = self.tx.as_ref().expect("link is open");
        self.meter.record(&msg);
        if tx.send(msg.encode()).is_err() {
            self.dead = true;
            return Err(LinkError::Disconnected);
        }
        Ok(self.tickets.issue())
    }

    fn complete(&mut self, ticket: Ticket) -> Result<Message, LinkError> {
        self.tickets.redeem(ticket);
        let frame = self.recv_reply()?;
        let reply = decode_reply_timed(&self.meter, &frame).ok_or(LinkError::Malformed)?;
        if reply == Message::DecodeError {
            // The site could not decode our request; the round-trip failed.
            return Err(LinkError::Malformed);
        }
        self.meter.record(&reply);
        Ok(reply)
    }

    fn reconnect(&mut self) -> Result<(), LinkError> {
        // A worker thread cannot be respawned (the service moved into it);
        // reconnection succeeds exactly when the worker is still serving.
        // Replies to abandoned tickets will still arrive in order and must
        // be discarded ahead of any future reply.
        self.stale_replies += self.tickets.outstanding();
        self.tickets.reset();
        if self.dead || !self.worker.as_ref().is_some_and(|h| !h.is_finished()) {
            self.dead = true;
            return Err(LinkError::Disconnected);
        }
        Ok(())
    }
}

impl Drop for ChannelLink {
    fn drop(&mut self) {
        // Closing the request channel ends the worker loop.
        self.tx.take();
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

/// Fault-injecting wrapper around any [`Link`], for robustness testing.
///
/// After `healthy_calls` successful round-trips the link starts misbehaving
/// according to its [`FaultMode`]. The schedule is a pure function of the
/// per-link attempt count, so the same fault replays identically across
/// pool sizes and transports. Coordinators must surface such faults as
/// typed errors or degraded outcomes instead of panicking or hanging.
#[derive(Debug)]
pub struct FaultyLink<L> {
    inner: L,
    mode: FaultMode,
    healthy_calls: u64,
    calls: u64,
}

/// What a [`FaultyLink`] does once its healthy budget is exhausted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultMode {
    /// Replies `Ack` to everything — a site that lost its state.
    WrongReply,
    /// Replies with garbage survival values (NaN) — a corrupted computation.
    CorruptSurvival,
    /// Never replies again: every attempt reports [`LinkError::Timeout`]
    /// without reaching the service — a permanently lost request.
    Drop,
    /// Swallows the next `n` attempts as timeouts, then recovers — a
    /// straggler that a retry budget of at least `n` rides out with the
    /// exact healthy-run answer (the service never sees the swallowed
    /// attempts, so its state is untouched).
    Stall(u64),
    /// The connection is gone for good: every attempt reports
    /// [`LinkError::Disconnected`] without reaching the service.
    Disconnect,
}

impl<L: Link> FaultyLink<L> {
    /// Wraps `inner`, letting `healthy_calls` round-trips through before
    /// faulting with `mode`.
    pub fn new(inner: L, mode: FaultMode, healthy_calls: u64) -> Self {
        FaultyLink { inner, mode, healthy_calls, calls: 0 }
    }

    /// Round-trips attempted so far.
    pub fn calls(&self) -> u64 {
        self.calls
    }

    /// `Some(error)` if the current attempt (per `self.calls`, already
    /// incremented) is swallowed by the fault before reaching the inner
    /// link; `None` if the request goes through.
    fn swallowed(&self) -> Option<LinkError> {
        if self.calls <= self.healthy_calls {
            return None;
        }
        match self.mode {
            FaultMode::Drop => Some(LinkError::Timeout),
            FaultMode::Disconnect => Some(LinkError::Disconnected),
            FaultMode::Stall(n) if self.calls <= self.healthy_calls + n => Some(LinkError::Timeout),
            _ => None,
        }
    }

    fn corrupt(&self, reply: Message) -> Message {
        if self.calls <= self.healthy_calls {
            return reply;
        }
        match self.mode {
            FaultMode::WrongReply => Message::Ack,
            FaultMode::CorruptSurvival => match reply {
                Message::SurvivalReply { pruned, .. } => {
                    Message::SurvivalReply { survival: f64::NAN, pruned }
                }
                other => other,
            },
            FaultMode::Drop | FaultMode::Stall(_) | FaultMode::Disconnect => reply,
        }
    }
}

impl<L: Link> Link for FaultyLink<L> {
    // Tickets pass through the inner link untouched: the fault schedule
    // decides at send time (per the attempt counter) whether a request is
    // swallowed, and corrupts the payload at completion time.
    fn send(&mut self, msg: Message) -> Result<Ticket, LinkError> {
        self.calls += 1;
        if let Some(e) = self.swallowed() {
            return Err(e);
        }
        // Always drive the inner link, even when the payload is about to be
        // corrupted: faulting and healthy paths must leave the service
        // state and the metering identical.
        self.inner.send(msg)
    }

    fn complete(&mut self, ticket: Ticket) -> Result<Message, LinkError> {
        let reply = self.inner.complete(ticket)?;
        Ok(self.corrupt(reply))
    }

    fn reconnect(&mut self) -> Result<(), LinkError> {
        self.inner.reconnect()
    }
}

/// What a [`FaultPlan`] window injects.
///
/// The generalization of [`FaultMode`] the chaos harness schedules: each
/// kind is *answer-invariant* — a swallowed attempt never reaches the
/// service, and a slow attempt only adds latency — so a run that rides the
/// faults out (via retries) or quarantines and later resyncs the site must
/// still converge to the exact never-failed answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// The attempt is swallowed as [`LinkError::Timeout`] — a stalled site
    /// or a crashed one, depending on the window length vs the retry
    /// budget.
    Timeout,
    /// The attempt is swallowed as [`LinkError::Disconnected`] — the
    /// connection drops.
    Disconnect,
    /// The request frame arrives corrupted: the site answers
    /// `DecodeError`, which the transport surfaces as
    /// [`LinkError::Malformed`] without executing the request.
    Malformed,
    /// The attempt goes through after a deterministic pause of this many
    /// milliseconds — a slow link, never a wrong answer.
    Slow(u64),
}

/// One contiguous fault window of a [`FaultPlan`]: attempts
/// `start ..= start + len - 1` (1-based per-link attempt ordinals) are hit
/// with `kind`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultWindow {
    /// First faulted attempt ordinal (1-based).
    pub start: u64,
    /// Number of consecutive faulted attempts.
    pub len: u64,
    /// What the window injects.
    pub kind: FaultKind,
}

impl FaultWindow {
    fn covers(&self, call: u64) -> bool {
        call >= self.start && call - self.start < self.len
    }
}

/// A deterministic per-link fault schedule, keyed on the attempt ordinal.
///
/// Like [`FaultyLink`], whether an attempt faults is a pure function of
/// the per-link attempt counter — never the wall clock — so the same plan
/// replays the same fault transcript on every transport (inline, threaded,
/// TCP) and every pool size. Retries advance the counter, which is how a
/// finite window "heals": a window longer than the retry budget crashes
/// the site into quarantine, a shorter one is ridden out invisibly.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultPlan {
    windows: Vec<FaultWindow>,
}

/// `splitmix64`: the standard 64-bit mixing step used to derive fault
/// schedules from a seed. Small, well-distributed, dependency-free.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// A plan with no faults at all.
    pub fn quiet() -> Self {
        FaultPlan::default()
    }

    /// Adds a fault window (builder style). Overlapping windows resolve to
    /// the earliest-added match.
    pub fn window(mut self, start: u64, len: u64, kind: FaultKind) -> Self {
        self.windows.push(FaultWindow { start, len, kind });
        self
    }

    /// Derives site `site`'s schedule from a shared `seed`.
    ///
    /// Roughly a quarter of the sites stay quiet; the rest get one or two
    /// short windows of a seed-chosen kind starting a few attempts in. The
    /// derivation is a pure function of `(seed, site)`, so one u64
    /// reproduces the whole cluster's chaos on any machine.
    pub fn seeded(seed: u64, site: u32) -> Self {
        let mut state = seed ^ (u64::from(site) + 1).wrapping_mul(0xA24B_AED4_963E_E407);
        let shape = splitmix64(&mut state);
        if shape % 4 == 0 {
            return FaultPlan::quiet();
        }
        let count = 1 + (shape >> 8) % 2;
        let mut plan = FaultPlan::quiet();
        let mut cursor = 2 + splitmix64(&mut state) % 24;
        for _ in 0..count {
            let len = 1 + splitmix64(&mut state) % 4;
            let kind = match splitmix64(&mut state) % 8 {
                0..=2 => FaultKind::Timeout,
                3 | 4 => FaultKind::Disconnect,
                5 => FaultKind::Malformed,
                _ => FaultKind::Slow(1 + splitmix64(&mut state) % 3),
            };
            plan = plan.window(cursor, len, kind);
            cursor += len + 4 + splitmix64(&mut state) % 16;
        }
        plan
    }

    /// Whether any window ever faults.
    pub fn is_quiet(&self) -> bool {
        self.windows.is_empty()
    }

    /// The scheduled windows, in insertion order.
    pub fn windows(&self) -> &[FaultWindow] {
        &self.windows
    }

    /// The fault (if any) scheduled for 1-based attempt ordinal `call`.
    pub fn fault_at(&self, call: u64) -> Option<FaultKind> {
        self.windows.iter().find(|w| w.covers(call)).map(|w| w.kind)
    }
}

/// Fault-injecting wrapper driven by a [`FaultPlan`] — the chaos harness's
/// generalization of [`FaultyLink`].
///
/// Sits *under* a [`RetryLink`](crate::RetryLink) in the stack
/// (`RetryLink<ChaosLink<transport>>`): the retry layer's attempts advance
/// the plan's ordinal clock, so short windows are absorbed by the budget
/// and long ones surface as quarantines — deterministically, on every
/// transport and pool size.
#[derive(Debug)]
pub struct ChaosLink<L> {
    inner: L,
    plan: FaultPlan,
    calls: u64,
}

impl<L: Link> ChaosLink<L> {
    /// Wraps `inner` under the given schedule.
    pub fn new(inner: L, plan: FaultPlan) -> Self {
        ChaosLink { inner, plan, calls: 0 }
    }

    /// Attempts made so far (the plan's ordinal clock).
    pub fn calls(&self) -> u64 {
        self.calls
    }

    /// The schedule this link replays.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }
}

impl<L: Link> Link for ChaosLink<L> {
    fn send(&mut self, msg: Message) -> Result<Ticket, LinkError> {
        self.calls += 1;
        match self.plan.fault_at(self.calls) {
            // Swallowed attempts never reach the service: its state and the
            // metering stay exactly what a healthy run would leave, which
            // is what makes post-recovery bit-identity possible.
            Some(FaultKind::Timeout) => Err(LinkError::Timeout),
            Some(FaultKind::Disconnect) => Err(LinkError::Disconnected),
            Some(FaultKind::Malformed) => Err(LinkError::Malformed),
            Some(FaultKind::Slow(ms)) => {
                std::thread::sleep(Duration::from_millis(ms));
                self.inner.send(msg)
            }
            None => self.inner.send(msg),
        }
    }

    fn complete(&mut self, ticket: Ticket) -> Result<Message, LinkError> {
        self.inner.complete(ticket)
    }

    fn reconnect(&mut self) -> Result<(), LinkError> {
        self.inner.reconnect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TupleMsg;
    use dsud_uncertain::{Probability, TupleId, UncertainTuple};

    fn echo_service() -> impl Service {
        |msg: Message| match msg {
            Message::RequestNext => Message::Upload(None),
            Message::Feedback(t) => Message::SurvivalReply { survival: t.local_prob, pruned: 0 },
            _ => Message::Ack,
        }
    }

    fn feedback_msg(local_prob: f64) -> Message {
        let t =
            UncertainTuple::new(TupleId::new(0, 0), vec![1.0, 1.0], Probability::new(0.5).unwrap())
                .unwrap();
        Message::Feedback(TupleMsg::new(&t, local_prob))
    }

    fn short_deadline() -> LinkConfig {
        LinkConfig {
            request_timeout: Duration::from_millis(50),
            retry_budget: 2,
            backoff: Duration::ZERO,
        }
    }

    #[test]
    fn local_link_meters_both_directions() {
        let meter = BandwidthMeter::new();
        let mut link = LocalLink::new(echo_service(), meter.clone());
        let reply = link.call(feedback_msg(0.25)).unwrap();
        assert_eq!(reply, Message::SurvivalReply { survival: 0.25, pruned: 0 });
        let snap = meter.snapshot();
        assert_eq!(snap.feedback.messages, 1);
        assert_eq!(snap.reply.messages, 1);
        assert_eq!(snap.tuples_transmitted(), 1);
    }

    #[test]
    fn channel_link_round_trips() {
        let meter = BandwidthMeter::new();
        let mut link = ChannelLink::spawn(echo_service(), meter.clone());
        for i in 0..10 {
            let reply = link.call(feedback_msg(i as f64 / 100.0)).unwrap();
            assert_eq!(reply, Message::SurvivalReply { survival: i as f64 / 100.0, pruned: 0 });
        }
        assert_eq!(meter.snapshot().feedback.messages, 10);
        drop(link); // must join cleanly
    }

    #[test]
    fn channel_and_local_links_meter_identically() {
        let meter_a = BandwidthMeter::new();
        let meter_b = BandwidthMeter::new();
        let mut local = LocalLink::new(echo_service(), meter_a.clone());
        let mut channel = ChannelLink::spawn(echo_service(), meter_b.clone());
        for _ in 0..5 {
            local.call(Message::RequestNext).unwrap();
            channel.call(Message::RequestNext).unwrap();
        }
        assert_eq!(meter_a.snapshot(), meter_b.snapshot());
    }

    #[test]
    fn channel_link_times_out_on_stalled_site_and_drains_stale_reply() {
        let sleepy = |msg: Message| {
            if matches!(msg, Message::RequestNext) {
                std::thread::sleep(Duration::from_millis(200));
            }
            match msg {
                Message::Feedback(t) => {
                    Message::SurvivalReply { survival: t.local_prob, pruned: 0 }
                }
                _ => Message::Ack,
            }
        };
        let meter = BandwidthMeter::new();
        let mut link = ChannelLink::spawn_with(sleepy, meter, short_deadline());
        // The slow request misses its 50 ms deadline.
        assert_eq!(link.call(Message::RequestNext), Err(LinkError::Timeout));
        // The next request must get *its own* reply, not the stale reply to
        // the timed-out request that is still in flight.
        std::thread::sleep(Duration::from_millis(250));
        assert_eq!(
            link.call(feedback_msg(0.75)),
            Ok(Message::SurvivalReply { survival: 0.75, pruned: 0 })
        );
    }

    #[test]
    fn channel_link_reports_dead_worker_as_disconnected() {
        let meter = BandwidthMeter::new();
        let mut link = ChannelLink::spawn_with(
            |_msg: Message| -> Message { panic!("injected site crash (expected in fault tests)") },
            meter,
            short_deadline(),
        );
        assert_eq!(link.call(Message::RequestNext), Err(LinkError::Disconnected));
        assert_eq!(link.reconnect(), Err(LinkError::Disconnected));
        // Subsequent calls keep failing cleanly instead of panicking.
        assert!(link.call(Message::RequestNext).is_err());
    }

    #[test]
    fn channel_link_maps_decode_error_reply_to_malformed() {
        let meter = BandwidthMeter::new();
        let mut link = ChannelLink::spawn(|_msg: Message| Message::DecodeError, meter.clone());
        assert_eq!(link.call(Message::RequestNext), Err(LinkError::Malformed));
        // A decode-error reply is a transport failure, not protocol traffic.
        assert_eq!(meter.snapshot().reply.messages, 0);
        // The worker is still alive: the fault is per-request.
        assert!(link.reconnect().is_ok());
    }

    #[test]
    fn link_error_classifies_io_errors() {
        use std::io::{Error as IoError, ErrorKind};
        assert_eq!(LinkError::from(IoError::from(ErrorKind::TimedOut)), LinkError::Timeout);
        assert_eq!(LinkError::from(IoError::from(ErrorKind::WouldBlock)), LinkError::Timeout);
        assert_eq!(
            LinkError::from(IoError::from(ErrorKind::ConnectionReset)),
            LinkError::Disconnected
        );
        assert_eq!(
            LinkError::from(IoError::from(ErrorKind::UnexpectedEof)),
            LinkError::Disconnected
        );
        assert!(matches!(
            LinkError::from(IoError::new(ErrorKind::Other, "disk on fire")),
            LinkError::Io(_)
        ));
    }

    #[test]
    fn backoff_steps_are_deterministic_and_linear() {
        let config = LinkConfig {
            request_timeout: Duration::from_secs(1),
            retry_budget: 3,
            backoff: Duration::from_millis(10),
        };
        assert_eq!(config.backoff_step(1), Duration::from_millis(10));
        assert_eq!(config.backoff_step(2), Duration::from_millis(20));
        assert_eq!(config.backoff_step(3), Duration::from_millis(30));
        // Re-computing gives the same schedule: no randomness involved.
        assert_eq!(config.backoff_step(2), config.backoff_step(2));
    }

    #[test]
    fn faulty_link_misbehaves_on_schedule() {
        let meter = BandwidthMeter::new();
        let inner = LocalLink::new(echo_service(), meter);
        let mut link = FaultyLink::new(inner, FaultMode::WrongReply, 2);
        assert_eq!(link.call(Message::RequestNext), Ok(Message::Upload(None)));
        assert_eq!(link.call(Message::RequestNext), Ok(Message::Upload(None)));
        assert_eq!(link.call(Message::RequestNext), Ok(Message::Ack));
        assert_eq!(link.calls(), 3);
    }

    #[test]
    fn wrong_reply_drives_inner_service_on_both_paths() {
        // The call path and the send/complete path must leave identical
        // service state and metering even while faulting.
        let run = |split: bool| {
            let meter = BandwidthMeter::new();
            let mut seen = 0u64;
            let service = move |_msg: Message| {
                seen += 1;
                Message::SurvivalReply { survival: seen as f64, pruned: 0 }
            };
            let mut link =
                FaultyLink::new(LocalLink::new(service, meter.clone()), FaultMode::WrongReply, 1);
            for _ in 0..3 {
                if split {
                    let ticket = link.send(Message::RequestNext).unwrap();
                    link.complete(ticket).unwrap();
                } else {
                    link.call(Message::RequestNext).unwrap();
                }
            }
            meter.snapshot()
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn corrupt_survival_produces_nan() {
        let meter = BandwidthMeter::new();
        let inner = LocalLink::new(echo_service(), meter);
        let mut link = FaultyLink::new(inner, FaultMode::CorruptSurvival, 0);
        match link.call(feedback_msg(0.5)).unwrap() {
            Message::SurvivalReply { survival, .. } => assert!(survival.is_nan()),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn drop_and_disconnect_faults_never_reach_the_service() {
        for (mode, expected) in [
            (FaultMode::Drop, LinkError::Timeout),
            (FaultMode::Disconnect, LinkError::Disconnected),
        ] {
            let meter = BandwidthMeter::new();
            let inner = LocalLink::new(echo_service(), meter.clone());
            let mut link = FaultyLink::new(inner, mode, 1);
            assert!(link.call(Message::RequestNext).is_ok());
            assert_eq!(link.call(Message::RequestNext), Err(expected.clone()));
            assert_eq!(link.call(Message::RequestNext), Err(expected));
            // Only the healthy round-trip was metered.
            assert_eq!(meter.snapshot().control.messages, 1);
        }
    }

    #[test]
    fn stall_fault_recovers_after_n_attempts() {
        let meter = BandwidthMeter::new();
        let inner = LocalLink::new(echo_service(), meter);
        let mut link = FaultyLink::new(inner, FaultMode::Stall(2), 1);
        assert_eq!(link.call(Message::RequestNext), Ok(Message::Upload(None)));
        assert_eq!(link.call(Message::RequestNext), Err(LinkError::Timeout));
        assert_eq!(link.call(Message::RequestNext), Err(LinkError::Timeout));
        // Attempt n+1 goes through with the service state untouched.
        assert_eq!(link.call(Message::RequestNext), Ok(Message::Upload(None)));
    }

    #[test]
    fn seeded_fault_plans_are_deterministic_and_vary_by_site() {
        for site in 0..16u32 {
            assert_eq!(
                FaultPlan::seeded(42, site),
                FaultPlan::seeded(42, site),
                "same (seed, site) must derive the same plan"
            );
        }
        // Across a spread of sites the seed must produce both quiet and
        // faulted schedules, and at least two distinct faulted ones.
        let plans: Vec<FaultPlan> = (0..16).map(|s| FaultPlan::seeded(42, s)).collect();
        assert!(plans.iter().any(FaultPlan::is_quiet), "some site stays quiet");
        let faulted: Vec<&FaultPlan> = plans.iter().filter(|p| !p.is_quiet()).collect();
        assert!(faulted.len() >= 2, "some sites must fault");
        assert!(faulted.windows(2).any(|w| w[0] != w[1]), "schedules must differ across sites");
        // A different seed reshuffles the schedules.
        assert!((0..16).any(|s| FaultPlan::seeded(42, s) != FaultPlan::seeded(43, s)));
    }

    #[test]
    fn chaos_link_faults_on_schedule_and_heals() {
        let meter = BandwidthMeter::new();
        let plan = FaultPlan::quiet()
            .window(2, 2, FaultKind::Timeout)
            .window(5, 1, FaultKind::Disconnect)
            .window(7, 1, FaultKind::Malformed);
        let mut link = ChaosLink::new(LocalLink::new(echo_service(), meter.clone()), plan);
        assert_eq!(link.call(Message::RequestNext), Ok(Message::Upload(None))); // 1
        assert_eq!(link.call(Message::RequestNext), Err(LinkError::Timeout)); // 2
        assert_eq!(link.call(Message::RequestNext), Err(LinkError::Timeout)); // 3
        assert_eq!(link.call(Message::RequestNext), Ok(Message::Upload(None))); // 4
        assert_eq!(link.call(Message::RequestNext), Err(LinkError::Disconnected)); // 5
        assert_eq!(link.call(Message::RequestNext), Ok(Message::Upload(None))); // 6
        assert_eq!(link.call(Message::RequestNext), Err(LinkError::Malformed)); // 7
        assert_eq!(link.call(Message::RequestNext), Ok(Message::Upload(None))); // 8
                                                                                // Swallowed attempts never reached the service or the meter.
        assert_eq!(meter.snapshot().control.messages, 4);
        assert_eq!(link.calls(), 8);
    }

    #[test]
    fn slow_windows_never_change_the_answer() {
        let plan = FaultPlan::quiet().window(1, 3, FaultKind::Slow(1));
        let meter = BandwidthMeter::new();
        let mut link = ChaosLink::new(LocalLink::new(echo_service(), meter.clone()), plan);
        for _ in 0..4 {
            assert_eq!(link.call(Message::RequestNext), Ok(Message::Upload(None)));
        }
        assert_eq!(meter.snapshot().control.messages, 4);
    }

    #[test]
    fn broadcast_overlaps_slow_sites() {
        // Each site sleeps 30 ms per request; a parallel broadcast to 8
        // sites must take far less than the 240 ms a sequential fan-out
        // would need.
        let slow_service = || {
            |msg: Message| {
                std::thread::sleep(std::time::Duration::from_millis(30));
                match msg {
                    Message::Feedback(t) => {
                        Message::SurvivalReply { survival: t.local_prob, pruned: 0 }
                    }
                    _ => Message::Ack,
                }
            }
        };
        let meter = BandwidthMeter::new();
        let mut links: Vec<Box<dyn Link>> = (0..8)
            .map(|_| Box::new(ChannelLink::spawn(slow_service(), meter.clone())) as _)
            .collect();
        let started = std::time::Instant::now();
        let replies = broadcast(&mut links, |_| true, &feedback_msg(0.5));
        let elapsed = started.elapsed();
        assert_eq!(replies.len(), 8);
        for (_, reply) in &replies {
            assert!(matches!(reply, Ok(Message::SurvivalReply { .. })));
        }
        assert!(
            elapsed < std::time::Duration::from_millis(150),
            "broadcast took {elapsed:?}, expected parallel overlap"
        );
    }

    #[test]
    fn broadcast_replies_are_pool_size_invariant() {
        // Stateful inline services: each reply depends on how many
        // requests the site has seen, so any reordering or dropped call
        // would change the transcript. Site 3 fails on its second round,
        // so error placement must be invariant too.
        let make_links = || -> Vec<Box<dyn Link>> {
            let meter = BandwidthMeter::new();
            (0..6)
                .map(|site| {
                    let mut seen = 0u64;
                    let service = move |_msg: Message| {
                        seen += 1;
                        Message::SurvivalReply { survival: (site * 100 + seen) as f64, pruned: 0 }
                    };
                    let local = LocalLink::new(service, meter.clone());
                    if site == 3 {
                        Box::new(FaultyLink::new(local, FaultMode::Drop, 1)) as _
                    } else {
                        Box::new(FaultyLink::new(local, FaultMode::Stall(0), u64::MAX)) as _
                    }
                })
                .collect()
        };
        let reference = {
            threadpool::set_pool_size(1);
            let mut links = make_links();
            let mut rounds = Vec::new();
            for _ in 0..3 {
                rounds.push(broadcast(&mut links, |i| i != 1, &Message::RequestNext));
            }
            threadpool::set_pool_size(0);
            rounds
        };
        assert!(reference.iter().flatten().any(|(_, r)| r.is_err()), "fault must fire");
        for pool in [2usize, 8] {
            threadpool::set_pool_size(pool);
            let mut links = make_links();
            let mut rounds = Vec::new();
            for _ in 0..3 {
                rounds.push(broadcast(&mut links, |i| i != 1, &Message::RequestNext));
            }
            threadpool::set_pool_size(0);
            assert_eq!(rounds, reference, "pool {pool}");
        }
    }

    #[test]
    fn broadcast_respects_include_filter() {
        let meter = BandwidthMeter::new();
        let mut links: Vec<Box<dyn Link>> =
            (0..4).map(|_| Box::new(LocalLink::new(echo_service(), meter.clone())) as _).collect();
        let replies = broadcast(&mut links, |i| i != 2, &Message::RequestNext);
        let indices: Vec<usize> = replies.iter().map(|(i, _)| *i).collect();
        assert_eq!(indices, vec![0, 1, 3]);
    }

    #[test]
    fn scatter_sends_distinct_payloads_and_orders_replies() {
        let meter = BandwidthMeter::new();
        let mut links: Vec<Box<dyn Link>> =
            (0..4).map(|_| Box::new(LocalLink::new(echo_service(), meter.clone())) as _).collect();
        // Skip site 1; sites get different feedback payloads, echoed back as
        // the survival so each reply proves which payload its site received.
        let replies = scatter(
            &mut links,
            vec![(3, feedback_msg(0.3)), (0, feedback_msg(0.9)), (2, feedback_msg(0.6))],
        );
        assert_eq!(
            replies,
            vec![
                (0, Ok(Message::SurvivalReply { survival: 0.9, pruned: 0 })),
                (2, Ok(Message::SurvivalReply { survival: 0.6, pruned: 0 })),
                (3, Ok(Message::SurvivalReply { survival: 0.3, pruned: 0 })),
            ]
        );
    }

    #[test]
    fn scatter_replies_are_pool_size_invariant() {
        let make_links = || -> Vec<Box<dyn Link>> {
            let meter = BandwidthMeter::new();
            (0..5)
                .map(|site| {
                    let mut seen = 0u64;
                    let service = move |_msg: Message| {
                        seen += 1;
                        Message::SurvivalReply { survival: (site * 100 + seen) as f64, pruned: 0 }
                    };
                    let local = LocalLink::new(service, meter.clone());
                    if site == 2 {
                        Box::new(FaultyLink::new(local, FaultMode::Drop, 1)) as _
                    } else {
                        Box::new(FaultyLink::new(local, FaultMode::Stall(0), u64::MAX)) as _
                    }
                })
                .collect()
        };
        let requests =
            || vec![(0, feedback_msg(0.1)), (2, feedback_msg(0.2)), (4, feedback_msg(0.4))];
        let reference = {
            threadpool::set_pool_size(1);
            let mut links = make_links();
            let rounds: Vec<_> = (0..3).map(|_| scatter(&mut links, requests())).collect();
            threadpool::set_pool_size(0);
            rounds
        };
        assert!(reference.iter().flatten().any(|(_, r)| r.is_err()), "fault must fire");
        for pool in [2usize, 8] {
            threadpool::set_pool_size(pool);
            let mut links = make_links();
            let rounds: Vec<_> = (0..3).map(|_| scatter(&mut links, requests())).collect();
            threadpool::set_pool_size(0);
            assert_eq!(rounds, reference, "pool {pool}");
        }
    }

    #[test]
    #[should_panic(expected = "duplicate scatter target")]
    fn scatter_rejects_duplicate_targets() {
        let meter = BandwidthMeter::new();
        let mut links: Vec<Box<dyn Link>> =
            (0..2).map(|_| Box::new(LocalLink::new(echo_service(), meter.clone())) as _).collect();
        let _ = scatter(&mut links, vec![(1, Message::RequestNext), (1, Message::RequestNext)]);
    }

    #[test]
    #[should_panic(expected = "tickets must be completed in send order")]
    fn out_of_order_completion_panics() {
        let meter = BandwidthMeter::new();
        let mut link = LocalLink::new(echo_service(), meter);
        let _first = link.send(Message::RequestNext).unwrap();
        let second = link.send(Message::RequestNext).unwrap();
        let _ = link.complete(second);
    }

    #[test]
    #[should_panic(expected = "tickets must be completed in send order")]
    fn double_completion_panics() {
        let meter = BandwidthMeter::new();
        let mut link = LocalLink::new(echo_service(), meter);
        let ticket = link.send(Message::RequestNext).unwrap();
        link.complete(ticket).unwrap();
        let _ = link.complete(ticket);
    }

    /// The pipelined coordinators keep two requests in flight per link;
    /// every transport must pair each ticket with the reply to *its own*
    /// request, in send order.
    #[test]
    fn multiple_outstanding_requests_complete_in_send_order() {
        let stateful = || {
            let mut seen = 0u64;
            move |_msg: Message| {
                seen += 1;
                Message::SurvivalReply { survival: seen as f64, pruned: 0 }
            }
        };
        let meter = BandwidthMeter::new();
        let mut links: Vec<Box<dyn Link>> = vec![
            Box::new(LocalLink::new(stateful(), meter.clone())),
            Box::new(ChannelLink::spawn(stateful(), meter.clone())),
        ];
        for link in &mut links {
            let tickets: Vec<Ticket> =
                (0..3).map(|_| link.send(Message::RequestNext).unwrap()).collect();
            for (k, ticket) in tickets.into_iter().enumerate() {
                assert_eq!(
                    link.complete(ticket),
                    Ok(Message::SurvivalReply { survival: (k + 1) as f64, pruned: 0 })
                );
            }
        }
    }

    /// Reconnecting abandons outstanding tickets: their replies are
    /// discarded, and the next round-trip gets its own reply.
    #[test]
    fn channel_reconnect_discards_abandoned_replies() {
        let stateful = {
            let mut seen = 0u64;
            move |_msg: Message| {
                seen += 1;
                Message::SurvivalReply { survival: seen as f64, pruned: 0 }
            }
        };
        let meter = BandwidthMeter::new();
        let mut link = ChannelLink::spawn(stateful, meter);
        let _abandoned = link.send(Message::RequestNext).unwrap();
        link.reconnect().unwrap();
        // The reply to the abandoned request (survival 1.0) is skipped.
        assert_eq!(
            link.call(Message::RequestNext),
            Ok(Message::SurvivalReply { survival: 2.0, pruned: 0 })
        );
    }

    #[test]
    fn many_concurrent_sites() {
        let meter = BandwidthMeter::new();
        let mut links: Vec<ChannelLink> =
            (0..32).map(|_| ChannelLink::spawn(echo_service(), meter.clone())).collect();
        for link in &mut links {
            assert_eq!(link.call(Message::RequestNext), Ok(Message::Upload(None)));
        }
        assert_eq!(meter.snapshot().control.messages, 32);
        assert_eq!(meter.snapshot().upload.messages, 32);
    }
}
