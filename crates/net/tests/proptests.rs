//! Property-based wire-format validation: encode/decode round-trips for
//! arbitrary messages, and decoding must never panic on arbitrary bytes
//! (a malformed or hostile frame yields `None`, not a crash).

use bytes::Bytes;
use proptest::prelude::*;

use dsud_net::{Message, TupleMsg};
use dsud_uncertain::{SubspaceMask, TupleId};

fn arb_tuple_msg() -> impl Strategy<Value = TupleMsg> {
    (
        any::<u32>(),
        any::<u64>(),
        prop::collection::vec(-1e6f64..1e6, 1..6),
        0.01f64..=1.0,
        0.0f64..=1.0,
    )
        .prop_map(|(site, seq, values, prob, local_prob)| TupleMsg {
            id: TupleId::new(site, seq),
            values,
            prob,
            local_prob,
        })
}

fn arb_message() -> impl Strategy<Value = Message> {
    prop_oneof![
        (0.01f64..=1.0, 1u64..=64).prop_map(|(q, bits)| Message::Start {
            q,
            mask: SubspaceMask::try_from_bits(bits).unwrap(),
        }),
        Just(Message::RequestNext),
        arb_tuple_msg().prop_map(Message::Feedback),
        Just(Message::Upload(None)),
        arb_tuple_msg().prop_map(|t| Message::Upload(Some(t))),
        (0.0f64..=1.0, any::<u64>())
            .prop_map(|(survival, pruned)| Message::SurvivalReply { survival, pruned }),
        arb_tuple_msg().prop_map(Message::NotifyInsert),
        arb_tuple_msg().prop_map(Message::NotifyDelete),
        prop::collection::vec(arb_tuple_msg(), 0..5).prop_map(Message::ReplicaSync),
        arb_tuple_msg().prop_map(Message::ReplicaAdd),
        arb_tuple_msg().prop_map(Message::ReplicaRemove),
        arb_tuple_msg().prop_map(Message::RegionQuery),
        prop::collection::vec(arb_tuple_msg(), 0..5).prop_map(Message::RegionReply),
        arb_tuple_msg().prop_map(Message::InjectInsert),
        arb_tuple_msg().prop_map(Message::InjectDelete),
        Just(Message::Ack),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn encode_decode_roundtrips(msg in arb_message()) {
        let bytes = msg.encode();
        prop_assert_eq!(bytes.len(), msg.encoded_len());
        let back = Message::decode(bytes).expect("well-formed frame");
        prop_assert_eq!(back, msg);
    }

    #[test]
    fn decoding_arbitrary_bytes_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        // Must return Some or None, never panic.
        let _ = Message::decode(Bytes::from(bytes));
    }

    #[test]
    fn truncated_valid_frames_are_rejected(msg in arb_message(), cut in 0usize..64) {
        let bytes = msg.encode();
        if cut < bytes.len() && bytes.len() > 1 {
            let truncated = bytes.slice(0..bytes.len() - 1 - (cut % (bytes.len() - 1)));
            if truncated.len() < bytes.len() {
                prop_assert!(Message::decode(truncated).is_none());
            }
        }
    }
}
