//! Protocol observability for DSUD / e-DSUD runs.
//!
//! The paper evaluates its algorithms along two axes: *bandwidth* (tuples
//! transmitted over the network, Section 3.2) and *progressiveness* (when
//! each skyline answer is reported, Section 7.5). This crate makes those
//! measures — plus the index-level work the paper's Section 6 cost model
//! talks about — observable on every run without changing any algorithm:
//!
//! * [`Recorder`] — a cheaply-cloneable handle threaded through the
//!   coordinator, the sites, the network meter, and the PR-tree. The
//!   default ([`Recorder::disabled`]) is a no-op whose every operation is
//!   one `Option` branch, so instrumented hot paths cost nothing when
//!   observability is off.
//! * [`Counter`] — the typed counters of the paper's cost model: tuples
//!   shipped, messages, bytes, feedback broadcasts, PR-tree nodes visited
//!   and subtrees pruned, candidates expunged, and so on.
//! * Hierarchical spans (`query → round → site-phase`) with wall-clock
//!   timing, recorded via [`Recorder::span`] RAII guards.
//! * [`RunReport`] — a schema-versioned, serde-serializable summary (one
//!   JSON file per run) assembled by [`Recorder::report`]; the `dsud` CLI
//!   (`--report`) and the bench harness (`BENCH_*.json`) both emit it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::{Arc, Mutex, PoisonError};
use std::time::Instant;

use serde::{Deserialize, Serialize};

/// Version of the [`RunReport`] JSON schema. Bump on any breaking change
/// to the report layout so downstream tooling can dispatch on it.
///
/// Version history:
/// * 1 — counters + spans + progressive trace.
/// * 2 — adds per-phase wall-clock totals ([`RunReport::phases`]) and the
///   run's `transport` / `threads` configuration stamps.
/// * 3 — adds the fault-tolerance counters `link_retries`,
///   `link_timeouts`, and `quarantined_sites` to the counter snapshot.
///   Schema-1/2 files still deserialize (the new fields default to 0).
/// * 4 — adds the candidate-batching counters `batched_rounds` and
///   `multi_probe_node_visits` to the counter snapshot plus the run's
///   `batch_size` configuration stamp. Schema-1/2/3 files still
///   deserialize (counters default to 0, `batch_size` to `None`).
/// * 5 — adds the pipelining counters `pipeline_depth`,
///   `overlapped_rounds`, and `refill_overlap_us` to the counter snapshot
///   plus the run's `pipeline` configuration stamp. Schema ≤ 4 files still
///   deserialize (counters default to 0, `pipeline` to `None`).
/// * 6 — adds the session-layer counters `cache_hits` and
///   `admission_wait_us` to the counter snapshot plus the per-query
///   `query_id` stamp assigned by a `dsud serve` session server. Schema
///   ≤ 5 files still deserialize (counters default to 0, `query_id` to
///   `None`).
/// * 7 — adds the columnar-wire counters `columnar_frames`,
///   `bytes_saved`, and `decode_ns` to the counter snapshot plus the
///   run's `wire` configuration stamp. Schema ≤ 6 files still
///   deserialize (counters default to 0, `wire` to `None`).
/// * 8 — adds the recovery-lifecycle counters `rejoins`, `resync_ops`,
///   and `heartbeat_misses` plus the per-query-deadline counter
///   `cancelled` to the counter snapshot. Schema ≤ 7 files still
///   deserialize (counters default to 0).
/// * 9 — adds the topology counters `agg_merged_frames` and
///   `agg_fold_ops` to the counter snapshot plus the run's `topology`,
///   `agg_depth`, and `root_fanout` configuration stamps. Schema ≤ 8
///   files still deserialize (counters default to 0, stamps to `None`).
/// * 10 — adds the plan-phase counter `sketch_merges` to the counter
///   snapshot plus the run's `plan`, `sketch_bytes`, `plan_us`, and
///   `planned_batch` stamps. Schema ≤ 9 files still deserialize (the
///   counter defaults to 0, the stamps to `None`).
pub const SCHEMA_VERSION: u32 = 10;

/// Typed counters of the paper's cost model.
///
/// Traffic counters ([`Counter::BytesSent`], [`Counter::Messages`],
/// [`Counter::TuplesShipped`]) are fed by the network meter; coordinator
/// counters ([`Counter::Rounds`], [`Counter::FeedbackBroadcasts`],
/// [`Counter::Expunged`], [`Counter::PrunedAtSites`],
/// [`Counter::ProgressiveResults`]) by the DSUD / e-DSUD server loops;
/// index counters ([`Counter::PrTreeNodesVisited`],
/// [`Counter::PrTreePrunedSubtrees`], [`Counter::LocalSkylineSize`]) by
/// the PR-tree BBS traversals at the sites.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Counter {
    /// Wire-encoded bytes crossing the (simulated) network.
    BytesSent,
    /// Messages crossing the network (requests and responses).
    Messages,
    /// Tuple payloads transmitted — the paper's bandwidth unit
    /// (uploads + feedback + maintenance; control traffic carries none).
    TuplesShipped,
    /// Candidate broadcasts issued by the server (one per Server-Delivery
    /// phase, regardless of the number of receiving sites).
    FeedbackBroadcasts,
    /// Coordinator rounds (one queue-head selection each).
    Rounds,
    /// Candidates expunged by the e-DSUD bound without any broadcast.
    Expunged,
    /// Local-skyline candidates pruned at the sites by feedback
    /// (the Local-Pruning phase, Section 5.1).
    PrunedAtSites,
    /// PR-tree nodes expanded by BBS local-skyline traversals.
    PrTreeNodesVisited,
    /// PR-tree subtrees pruned by the BBS probability bound.
    PrTreePrunedSubtrees,
    /// Total size of the threshold-qualified local skylines `SKY(D_i)`.
    LocalSkylineSize,
    /// Skyline answers reported progressively to the user.
    ProgressiveResults,
    /// Link-level retries performed after a transport failure
    /// (fed by `dsud-net`'s `RetryLink`).
    LinkRetries,
    /// Link-level request deadlines that elapsed without a reply.
    LinkTimeouts,
    /// Sites quarantined by a degraded-mode coordinator after exhausting
    /// their retry budget.
    QuarantinedSites,
    /// Coordinator rounds that shipped more than one candidate in a single
    /// coalesced `FeedbackBatch` frame per site.
    BatchedRounds,
    /// PR-tree nodes visited by multi-probe survival traversals
    /// ([`survival_products`](https://docs.rs/dsud-prtree)): each node is
    /// counted once per traversal no matter how many probes needed it.
    MultiProbeNodeVisits,
    /// Configured pipeline window (in-flight requests per link), added once
    /// per query so reports record the depth the run was executed at.
    PipelineDepth,
    /// Coordinator rounds whose refill requests were issued while the
    /// previous survival scatter was still being folded in.
    OverlappedRounds,
    /// Microseconds refill requests spent in flight while the coordinator
    /// did other work (survival folds, reporting) before completing them.
    RefillOverlapUs,
    /// Queries answered from a session server's result cache without a
    /// single candidate round (1 on the cached query's own report; the
    /// server also aggregates it across queries).
    CacheHits,
    /// Microseconds a query waited in the session server's FIFO admission
    /// queue before its first round could start.
    AdmissionWaitUs,
    /// Columnar bulk-data frames (`FeedbackBatchC`, `SurvivalBatchReplyC`,
    /// `ReplicaSyncC`, `RegionReplyC`) crossing the network, fed by the
    /// bandwidth meter.
    ColumnarFrames,
    /// Bytes the columnar encoding saved versus each frame's row-oriented
    /// legacy twin (saturating per frame: small frames where the columnar
    /// header premium exceeds the per-row saving contribute 0).
    BytesSaved,
    /// Nanoseconds spent decoding reply frames on the coordinator side of
    /// off-thread transports (channel / TCP). Inline transports hand the
    /// reply over as a value, so they contribute 0.
    DecodeNs,
    /// Quarantined sites that completed probation and rejoined the
    /// cluster as `Active` (fed by the session server's heartbeat loop).
    Rejoins,
    /// Update operations replayed to a rejoining site from the session
    /// server's op log (one per deferred `UpdateOp`).
    ResyncOps,
    /// Heartbeat probes that failed to draw a `HealthAck` from their
    /// site before the link's retry budget ran out.
    HeartbeatMisses,
    /// Queries cancelled by their `--deadline` before termination; the
    /// partial progressive outcome is stamped `cancelled`.
    Cancelled,
    /// Logical per-site deliveries the root link did *not* carry because a
    /// tree topology merged them into aggregate frames (per merged frame:
    /// member count minus one). Zero in a flat run.
    AggMergedFrames,
    /// Per-site replies the root folded out of merged `AggReplies` frames.
    /// Zero in a flat run.
    AggFoldOps,
    /// Plan-phase sketch merges performed at the root (one per additional
    /// sketch folded into the merged synopsis; tree aggregators merge
    /// their subtrees in-flight and are not separately counted). Zero
    /// with `--plan static`.
    SketchMerges,
}

const COUNTER_COUNT: usize = 31;

impl Counter {
    fn index(self) -> usize {
        self as usize
    }
}

/// One timed span of the `query → round → site-phase` hierarchy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanRecord {
    /// Span label, e.g. `"query:dsud"`, `"round"`, `"server-delivery"`.
    pub name: String,
    /// Index (into [`RunReport::spans`]) of the enclosing span, if any.
    pub parent: Option<usize>,
    /// Microseconds from recorder creation to span start.
    pub start_us: u64,
    /// Microseconds from recorder creation to span end; `None` if the
    /// span was still open when the report was taken.
    pub end_us: Option<u64>,
}

/// Aggregate wall-clock spent in all spans sharing one label.
///
/// Spans nest, so phase totals overlap (e.g. every `"round"` contains a
/// `"server-delivery"`); totals answer "how long did we spend in phase X
/// overall", not "how do phases partition the run".
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseTotal {
    /// Span label this total aggregates, e.g. `"server-delivery"`.
    pub name: String,
    /// Number of spans recorded under this label.
    pub count: u64,
    /// Total microseconds across those spans. Spans still open when the
    /// report was taken are counted up to the report time.
    pub total_us: u64,
}

/// One progressively-reported skyline answer, timestamped.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProgressSample {
    /// Home site of the reported tuple.
    pub site: u32,
    /// Sequence number of the reported tuple within its home site.
    pub seq: u64,
    /// Exact global skyline probability of the answer.
    pub probability: f64,
    /// Tuples transmitted over the network up to this report.
    pub tuples_transmitted: u64,
    /// Microseconds from recorder creation to the report.
    pub at_us: u64,
}

/// Final values of every [`Counter`], with stable JSON field names.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterSnapshot {
    /// Final value of [`Counter::BytesSent`].
    pub bytes_sent: u64,
    /// Final value of [`Counter::Messages`].
    pub messages: u64,
    /// Final value of [`Counter::TuplesShipped`].
    pub tuples_shipped: u64,
    /// Final value of [`Counter::FeedbackBroadcasts`].
    pub feedback_broadcasts: u64,
    /// Final value of [`Counter::Rounds`].
    pub rounds: u64,
    /// Final value of [`Counter::Expunged`].
    pub expunged: u64,
    /// Final value of [`Counter::PrunedAtSites`].
    pub pruned_at_sites: u64,
    /// Final value of [`Counter::PrTreeNodesVisited`].
    pub prtree_nodes_visited: u64,
    /// Final value of [`Counter::PrTreePrunedSubtrees`].
    pub prtree_pruned_subtrees: u64,
    /// Final value of [`Counter::LocalSkylineSize`].
    pub local_skyline_size: u64,
    /// Final value of [`Counter::ProgressiveResults`].
    pub progressive_results: u64,
    /// Final value of [`Counter::LinkRetries`]. Absent (0) before schema 3.
    #[serde(default)]
    pub link_retries: u64,
    /// Final value of [`Counter::LinkTimeouts`]. Absent (0) before schema 3.
    #[serde(default)]
    pub link_timeouts: u64,
    /// Final value of [`Counter::QuarantinedSites`]. Absent (0) before
    /// schema 3.
    #[serde(default)]
    pub quarantined_sites: u64,
    /// Final value of [`Counter::BatchedRounds`]. Absent (0) before
    /// schema 4.
    #[serde(default)]
    pub batched_rounds: u64,
    /// Final value of [`Counter::MultiProbeNodeVisits`]. Absent (0) before
    /// schema 4.
    #[serde(default)]
    pub multi_probe_node_visits: u64,
    /// Final value of [`Counter::PipelineDepth`]. Absent (0) before
    /// schema 5.
    #[serde(default)]
    pub pipeline_depth: u64,
    /// Final value of [`Counter::OverlappedRounds`]. Absent (0) before
    /// schema 5.
    #[serde(default)]
    pub overlapped_rounds: u64,
    /// Final value of [`Counter::RefillOverlapUs`]. Absent (0) before
    /// schema 5.
    #[serde(default)]
    pub refill_overlap_us: u64,
    /// Final value of [`Counter::CacheHits`]. Absent (0) before schema 6.
    #[serde(default)]
    pub cache_hits: u64,
    /// Final value of [`Counter::AdmissionWaitUs`]. Absent (0) before
    /// schema 6.
    #[serde(default)]
    pub admission_wait_us: u64,
    /// Final value of [`Counter::ColumnarFrames`]. Absent (0) before
    /// schema 7.
    #[serde(default)]
    pub columnar_frames: u64,
    /// Final value of [`Counter::BytesSaved`]. Absent (0) before schema 7.
    #[serde(default)]
    pub bytes_saved: u64,
    /// Final value of [`Counter::DecodeNs`]. Absent (0) before schema 7.
    #[serde(default)]
    pub decode_ns: u64,
    /// Final value of [`Counter::Rejoins`]. Absent (0) before schema 8.
    #[serde(default)]
    pub rejoins: u64,
    /// Final value of [`Counter::ResyncOps`]. Absent (0) before schema 8.
    #[serde(default)]
    pub resync_ops: u64,
    /// Final value of [`Counter::HeartbeatMisses`]. Absent (0) before
    /// schema 8.
    #[serde(default)]
    pub heartbeat_misses: u64,
    /// Final value of [`Counter::Cancelled`]. Absent (0) before schema 8.
    #[serde(default)]
    pub cancelled: u64,
    /// Final value of [`Counter::AggMergedFrames`]. Absent (0) before
    /// schema 9.
    #[serde(default)]
    pub agg_merged_frames: u64,
    /// Final value of [`Counter::AggFoldOps`]. Absent (0) before schema 9.
    #[serde(default)]
    pub agg_fold_ops: u64,
    /// Final value of [`Counter::SketchMerges`]. Absent (0) before
    /// schema 10.
    #[serde(default)]
    pub sketch_merges: u64,
}

impl CounterSnapshot {
    fn from_array(c: &[u64; COUNTER_COUNT]) -> Self {
        CounterSnapshot {
            bytes_sent: c[Counter::BytesSent.index()],
            messages: c[Counter::Messages.index()],
            tuples_shipped: c[Counter::TuplesShipped.index()],
            feedback_broadcasts: c[Counter::FeedbackBroadcasts.index()],
            rounds: c[Counter::Rounds.index()],
            expunged: c[Counter::Expunged.index()],
            pruned_at_sites: c[Counter::PrunedAtSites.index()],
            prtree_nodes_visited: c[Counter::PrTreeNodesVisited.index()],
            prtree_pruned_subtrees: c[Counter::PrTreePrunedSubtrees.index()],
            local_skyline_size: c[Counter::LocalSkylineSize.index()],
            progressive_results: c[Counter::ProgressiveResults.index()],
            link_retries: c[Counter::LinkRetries.index()],
            link_timeouts: c[Counter::LinkTimeouts.index()],
            quarantined_sites: c[Counter::QuarantinedSites.index()],
            batched_rounds: c[Counter::BatchedRounds.index()],
            multi_probe_node_visits: c[Counter::MultiProbeNodeVisits.index()],
            pipeline_depth: c[Counter::PipelineDepth.index()],
            overlapped_rounds: c[Counter::OverlappedRounds.index()],
            refill_overlap_us: c[Counter::RefillOverlapUs.index()],
            cache_hits: c[Counter::CacheHits.index()],
            admission_wait_us: c[Counter::AdmissionWaitUs.index()],
            columnar_frames: c[Counter::ColumnarFrames.index()],
            bytes_saved: c[Counter::BytesSaved.index()],
            decode_ns: c[Counter::DecodeNs.index()],
            rejoins: c[Counter::Rejoins.index()],
            resync_ops: c[Counter::ResyncOps.index()],
            heartbeat_misses: c[Counter::HeartbeatMisses.index()],
            cancelled: c[Counter::Cancelled.index()],
            agg_merged_frames: c[Counter::AggMergedFrames.index()],
            agg_fold_ops: c[Counter::AggFoldOps.index()],
            sketch_merges: c[Counter::SketchMerges.index()],
        }
    }

    /// The final value of one counter.
    pub fn get(&self, counter: Counter) -> u64 {
        match counter {
            Counter::BytesSent => self.bytes_sent,
            Counter::Messages => self.messages,
            Counter::TuplesShipped => self.tuples_shipped,
            Counter::FeedbackBroadcasts => self.feedback_broadcasts,
            Counter::Rounds => self.rounds,
            Counter::Expunged => self.expunged,
            Counter::PrunedAtSites => self.pruned_at_sites,
            Counter::PrTreeNodesVisited => self.prtree_nodes_visited,
            Counter::PrTreePrunedSubtrees => self.prtree_pruned_subtrees,
            Counter::LocalSkylineSize => self.local_skyline_size,
            Counter::ProgressiveResults => self.progressive_results,
            Counter::LinkRetries => self.link_retries,
            Counter::LinkTimeouts => self.link_timeouts,
            Counter::QuarantinedSites => self.quarantined_sites,
            Counter::BatchedRounds => self.batched_rounds,
            Counter::MultiProbeNodeVisits => self.multi_probe_node_visits,
            Counter::PipelineDepth => self.pipeline_depth,
            Counter::OverlappedRounds => self.overlapped_rounds,
            Counter::RefillOverlapUs => self.refill_overlap_us,
            Counter::CacheHits => self.cache_hits,
            Counter::AdmissionWaitUs => self.admission_wait_us,
            Counter::ColumnarFrames => self.columnar_frames,
            Counter::BytesSaved => self.bytes_saved,
            Counter::DecodeNs => self.decode_ns,
            Counter::Rejoins => self.rejoins,
            Counter::ResyncOps => self.resync_ops,
            Counter::HeartbeatMisses => self.heartbeat_misses,
            Counter::Cancelled => self.cancelled,
            Counter::AggMergedFrames => self.agg_merged_frames,
            Counter::AggFoldOps => self.agg_fold_ops,
            Counter::SketchMerges => self.sketch_merges,
        }
    }
}

/// Schema-versioned summary of one instrumented run, serialized to one
/// JSON file per run by the CLI (`--report`) and the bench harness.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Layout version of this report ([`SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Which algorithm produced the run (`"dsud"`, `"edsud"`, ...).
    pub algorithm: String,
    /// Wall-clock milliseconds from recorder creation to report time.
    pub wall_ms: f64,
    /// Final counter values.
    pub counters: CounterSnapshot,
    /// Every recorded span, in start order. `parent` indices point into
    /// this same vector, encoding the `query → round → site-phase` tree.
    pub spans: Vec<SpanRecord>,
    /// Wall-clock totals aggregated from [`RunReport::spans`] by label,
    /// sorted by name. Derived at report time; absent in schema 1 files.
    #[serde(default)]
    pub phases: Vec<PhaseTotal>,
    /// Transport the run used (`"inline"`, `"threaded"`, `"tcp"`), stamped
    /// by the caller that knows it (e.g. the CLI); `None` otherwise.
    #[serde(default)]
    pub transport: Option<String>,
    /// Thread-pool size the compute layer ran with, stamped by the caller;
    /// `None` otherwise.
    #[serde(default)]
    pub threads: Option<usize>,
    /// Candidate batch size the coordinator ran with (`"1"`, `"16"`,
    /// `"auto"`), stamped by the caller that knows it; `None` otherwise.
    /// Absent before schema 4.
    #[serde(default)]
    pub batch_size: Option<String>,
    /// Pipeline depth the coordinator ran with (`"1"`, `"8"`, `"auto"`),
    /// stamped by the caller that knows it; `None` otherwise. Absent
    /// before schema 5.
    #[serde(default)]
    pub pipeline: Option<String>,
    /// Session-server query id this report belongs to, stamped by a
    /// `dsud serve` session layer; `None` for one-shot runs. Absent before
    /// schema 6.
    #[serde(default)]
    pub query_id: Option<u64>,
    /// Wire layout the run used (`"legacy"`, `"columnar"`), stamped by the
    /// caller that knows it; `None` otherwise. Absent before schema 7.
    #[serde(default)]
    pub wire: Option<String>,
    /// Topology the run fanned out through (`"flat"`, `"tree:4"`,
    /// `"auto"`), stamped by the caller that knows it; `None` otherwise.
    /// Absent before schema 9.
    #[serde(default)]
    pub topology: Option<String>,
    /// Aggregation layers between the root and the sites (0 = flat),
    /// stamped by the caller that knows it. Absent before schema 9.
    #[serde(default)]
    pub agg_depth: Option<u32>,
    /// Physical links the root held, stamped by the caller that knows it.
    /// Equals the site count in a flat run. Absent before schema 9.
    #[serde(default)]
    pub root_fanout: Option<usize>,
    /// Plan mode the run used (`"static"`, `"sketch"`), stamped by the
    /// caller that knows it; `None` otherwise. Absent before schema 10.
    #[serde(default)]
    pub plan: Option<String>,
    /// Total sketch-frame bytes the plan phase shipped over the root
    /// links, stamped by the caller that knows it. Absent before
    /// schema 10.
    #[serde(default)]
    pub sketch_bytes: Option<u64>,
    /// Microseconds the plan phase spent gathering and merging sketches,
    /// stamped by the caller that knows it. Absent before schema 10.
    #[serde(default)]
    pub plan_us: Option<u64>,
    /// Effective `--batch auto` candidate budget the planner settled on,
    /// stamped by the caller that knows it; `None` in static runs. Absent
    /// before schema 10.
    #[serde(default)]
    pub planned_batch: Option<usize>,
    /// Progressive answer trace, in report order (timestamps are
    /// monotonically non-decreasing).
    pub progressive: Vec<ProgressSample>,
}

#[derive(Debug, Default)]
struct State {
    counters: [u64; COUNTER_COUNT],
    spans: Vec<SpanRecord>,
    /// Stack of indices into `spans` for the currently-open spans; the top
    /// is the parent of the next span started.
    open: Vec<usize>,
    progressive: Vec<ProgressSample>,
}

#[derive(Debug)]
struct Inner {
    started: Instant,
    state: Mutex<State>,
}

impl Inner {
    fn elapsed_us(&self) -> u64 {
        self.started.elapsed().as_micros() as u64
    }

    fn state(&self) -> std::sync::MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Shared handle onto one run's observations.
///
/// Cloning is cheap and produces a handle onto the same state, so the same
/// recorder can be threaded through the coordinator, the network meter,
/// and every site's PR-tree. The disabled recorder (the [`Default`]) holds
/// no state at all: every operation short-circuits on one `Option` branch.
#[derive(Debug, Clone, Default)]
pub struct Recorder {
    inner: Option<Arc<Inner>>,
}

impl Recorder {
    /// A recorder that observes nothing, at near-zero cost.
    pub fn disabled() -> Self {
        Recorder::default()
    }

    /// A live recorder; its clock starts now.
    pub fn enabled() -> Self {
        Recorder {
            inner: Some(Arc::new(Inner {
                started: Instant::now(),
                state: Mutex::new(State::default()),
            })),
        }
    }

    /// Whether observations are being collected.
    ///
    /// Use this to skip *preparing* expensive observations (e.g. summing a
    /// batch before [`Recorder::add`]); the recording calls themselves are
    /// already no-ops when disabled.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Adds `n` to a counter.
    pub fn add(&self, counter: Counter, n: u64) {
        if let Some(inner) = &self.inner {
            inner.state().counters[counter.index()] += n;
        }
    }

    /// Adds 1 to a counter.
    pub fn incr(&self, counter: Counter) {
        self.add(counter, 1);
    }

    /// Current value of a counter (0 when disabled).
    pub fn counter(&self, counter: Counter) -> u64 {
        match &self.inner {
            Some(inner) => inner.state().counters[counter.index()],
            None => 0,
        }
    }

    /// Opens a timed span; it closes when the returned guard drops. Spans
    /// opened while another is open become its children, yielding the
    /// `query → round → site-phase` hierarchy in [`RunReport::spans`].
    pub fn span(&self, name: &str) -> SpanGuard {
        let index = self.inner.as_ref().map(|inner| {
            let at = inner.elapsed_us();
            let mut state = inner.state();
            let index = state.spans.len();
            let parent = state.open.last().copied();
            state.spans.push(SpanRecord {
                name: name.to_string(),
                parent,
                start_us: at,
                end_us: None,
            });
            state.open.push(index);
            index
        });
        SpanGuard { recorder: self.clone(), index }
    }

    /// Records one progressively-reported skyline answer (and bumps
    /// [`Counter::ProgressiveResults`]).
    pub fn progressive(&self, site: u32, seq: u64, probability: f64, tuples_transmitted: u64) {
        if let Some(inner) = &self.inner {
            let at_us = inner.elapsed_us();
            let mut state = inner.state();
            state.counters[Counter::ProgressiveResults.index()] += 1;
            state.progressive.push(ProgressSample {
                site,
                seq,
                probability,
                tuples_transmitted,
                at_us,
            });
        }
    }

    /// Assembles the run report; `None` when the recorder is disabled.
    ///
    /// Taking a report does not consume the recorder: it snapshots the
    /// current state, so mid-run reports are valid (open spans simply have
    /// `end_us: None`).
    pub fn report(&self, algorithm: &str) -> Option<RunReport> {
        let inner = self.inner.as_ref()?;
        let now_us = inner.elapsed_us();
        let wall_ms = inner.started.elapsed().as_secs_f64() * 1e3;
        let state = inner.state();
        Some(RunReport {
            schema_version: SCHEMA_VERSION,
            algorithm: algorithm.to_string(),
            wall_ms,
            counters: CounterSnapshot::from_array(&state.counters),
            phases: phase_totals(&state.spans, now_us),
            spans: state.spans.clone(),
            progressive: state.progressive.clone(),
            transport: None,
            threads: None,
            batch_size: None,
            pipeline: None,
            query_id: None,
            wire: None,
            topology: None,
            agg_depth: None,
            root_fanout: None,
            plan: None,
            sketch_bytes: None,
            plan_us: None,
            planned_batch: None,
        })
    }
}

/// Aggregates spans by label into name-sorted [`PhaseTotal`]s. Spans still
/// open are counted up to `now_us`.
fn phase_totals(spans: &[SpanRecord], now_us: u64) -> Vec<PhaseTotal> {
    let mut totals: std::collections::BTreeMap<&str, (u64, u64)> =
        std::collections::BTreeMap::new();
    for span in spans {
        let end = span.end_us.unwrap_or(now_us);
        let entry = totals.entry(span.name.as_str()).or_insert((0, 0));
        entry.0 += 1;
        entry.1 += end.saturating_sub(span.start_us);
    }
    totals
        .into_iter()
        .map(|(name, (count, total_us))| PhaseTotal { name: name.to_string(), count, total_us })
        .collect()
}

/// RAII guard closing a span opened by [`Recorder::span`].
#[derive(Debug)]
pub struct SpanGuard {
    recorder: Recorder,
    index: Option<usize>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let (Some(inner), Some(index)) = (&self.recorder.inner, self.index) else {
            return;
        };
        let at = inner.elapsed_us();
        let mut state = inner.state();
        state.spans[index].end_us = Some(at);
        // Usually the top of the open stack; guards dropped out of order
        // (e.g. a span held across an early return) are still removed.
        if let Some(pos) = state.open.iter().rposition(|&i| i == index) {
            state.open.remove(pos);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_observes_nothing() {
        let rec = Recorder::disabled();
        assert!(!rec.is_enabled());
        rec.incr(Counter::Rounds);
        rec.add(Counter::BytesSent, 100);
        rec.progressive(0, 1, 0.5, 10);
        let _span = rec.span("query");
        assert_eq!(rec.counter(Counter::Rounds), 0);
        assert!(rec.report("dsud").is_none());
    }

    #[test]
    fn counters_accumulate_across_clones() {
        let rec = Recorder::enabled();
        let clone = rec.clone();
        rec.incr(Counter::Rounds);
        clone.add(Counter::Rounds, 2);
        clone.add(Counter::BytesSent, 42);
        assert_eq!(rec.counter(Counter::Rounds), 3);
        assert_eq!(rec.counter(Counter::BytesSent), 42);
        let report = rec.report("dsud").unwrap();
        assert_eq!(report.counters.rounds, 3);
        assert_eq!(report.counters.get(Counter::BytesSent), 42);
    }

    #[test]
    fn spans_nest_by_parent_index() {
        let rec = Recorder::enabled();
        {
            let _query = rec.span("query:dsud");
            for _ in 0..2 {
                let _round = rec.span("round");
                let _phase = rec.span("server-delivery");
            }
        }
        let report = rec.report("dsud").unwrap();
        assert_eq!(report.spans.len(), 5);
        assert_eq!(report.spans[0].parent, None);
        assert_eq!(report.spans[1].parent, Some(0)); // round 1 under query
        assert_eq!(report.spans[2].parent, Some(1)); // phase under round 1
        assert_eq!(report.spans[3].parent, Some(0)); // round 2 under query
        assert_eq!(report.spans[4].parent, Some(3));
        for span in &report.spans {
            let end = span.end_us.expect("all spans closed");
            assert!(end >= span.start_us);
        }
    }

    #[test]
    fn open_spans_survive_mid_run_reports() {
        let rec = Recorder::enabled();
        let _query = rec.span("query:edsud");
        let report = rec.report("edsud").unwrap();
        assert_eq!(report.spans.len(), 1);
        assert_eq!(report.spans[0].end_us, None);
    }

    #[test]
    fn progressive_samples_are_timestamped_in_order() {
        let rec = Recorder::enabled();
        rec.progressive(0, 1, 0.9, 10);
        rec.progressive(1, 4, 0.7, 25);
        rec.progressive(2, 2, 0.5, 31);
        let report = rec.report("dsud").unwrap();
        assert_eq!(report.counters.progressive_results, 3);
        assert_eq!(report.progressive.len(), 3);
        for pair in report.progressive.windows(2) {
            assert!(pair[0].at_us <= pair[1].at_us);
            assert!(pair[0].tuples_transmitted <= pair[1].tuples_transmitted);
        }
    }

    #[test]
    fn phases_aggregate_spans_by_name() {
        let rec = Recorder::enabled();
        {
            let _query = rec.span("query:dsud");
            for _ in 0..3 {
                let _round = rec.span("round");
            }
        }
        let open = rec.span("to-server"); // still open at report time
        let report = rec.report("dsud").unwrap();
        drop(open);

        assert_eq!(report.phases.len(), 3);
        // BTreeMap order: name-sorted.
        assert_eq!(report.phases[0].name, "query:dsud");
        assert_eq!(report.phases[0].count, 1);
        assert_eq!(report.phases[1].name, "round");
        assert_eq!(report.phases[1].count, 3);
        assert_eq!(report.phases[2].name, "to-server");
        assert_eq!(report.phases[2].count, 1);

        let round_spans: u64 = report
            .spans
            .iter()
            .filter(|s| s.name == "round")
            .map(|s| s.end_us.unwrap() - s.start_us)
            .sum();
        assert_eq!(report.phases[1].total_us, round_spans);
        assert_eq!(report.transport, None);
        assert_eq!(report.threads, None);
    }

    #[test]
    fn schema_one_reports_deserialize_with_defaults() {
        // A schema-1 file has no phases/transport/threads; they must fill
        // in as empty defaults rather than failing the parse.
        let json = r#"{
            "schema_version": 1,
            "algorithm": "dsud",
            "wall_ms": 1.5,
            "counters": {
                "bytes_sent": 0, "messages": 0, "tuples_shipped": 0,
                "feedback_broadcasts": 0, "rounds": 0, "expunged": 0,
                "pruned_at_sites": 0, "prtree_nodes_visited": 0,
                "prtree_pruned_subtrees": 0, "local_skyline_size": 0,
                "progressive_results": 0
            },
            "spans": [],
            "progressive": []
        }"#;
        let report: RunReport = serde_json::from_str(json).unwrap();
        assert!(report.phases.is_empty());
        assert_eq!(report.transport, None);
        assert_eq!(report.threads, None);
    }

    #[test]
    fn schema_two_reports_deserialize_with_zero_fault_counters() {
        // A schema-2 file predates the fault-tolerance counters; they must
        // fill in as zero rather than failing the parse.
        let json = r#"{
            "schema_version": 2,
            "algorithm": "edsud",
            "wall_ms": 2.5,
            "counters": {
                "bytes_sent": 9, "messages": 4, "tuples_shipped": 2,
                "feedback_broadcasts": 1, "rounds": 1, "expunged": 0,
                "pruned_at_sites": 0, "prtree_nodes_visited": 0,
                "prtree_pruned_subtrees": 0, "local_skyline_size": 0,
                "progressive_results": 1
            },
            "spans": [],
            "phases": [],
            "transport": "tcp",
            "threads": 4,
            "progressive": []
        }"#;
        let report: RunReport = serde_json::from_str(json).unwrap();
        assert_eq!(report.counters.link_retries, 0);
        assert_eq!(report.counters.link_timeouts, 0);
        assert_eq!(report.counters.quarantined_sites, 0);
        assert_eq!(report.counters.get(Counter::LinkRetries), 0);
        assert_eq!(report.transport.as_deref(), Some("tcp"));
    }

    #[test]
    fn schema_three_reports_deserialize_with_zero_batch_counters() {
        // A schema-3 file predates the batching counters and the
        // `batch_size` stamp; they must fill in as zero / `None`.
        let json = r#"{
            "schema_version": 3,
            "algorithm": "dsud",
            "wall_ms": 1.0,
            "counters": {
                "bytes_sent": 9, "messages": 4, "tuples_shipped": 2,
                "feedback_broadcasts": 1, "rounds": 1, "expunged": 0,
                "pruned_at_sites": 0, "prtree_nodes_visited": 0,
                "prtree_pruned_subtrees": 0, "local_skyline_size": 0,
                "progressive_results": 1, "link_retries": 0,
                "link_timeouts": 0, "quarantined_sites": 0
            },
            "spans": [],
            "phases": [],
            "transport": "inline",
            "threads": 1,
            "progressive": []
        }"#;
        let report: RunReport = serde_json::from_str(json).unwrap();
        assert_eq!(report.counters.batched_rounds, 0);
        assert_eq!(report.counters.multi_probe_node_visits, 0);
        assert_eq!(report.counters.get(Counter::BatchedRounds), 0);
        assert_eq!(report.batch_size, None);
    }

    #[test]
    fn schema_four_reports_deserialize_with_zero_pipeline_counters() {
        // A schema-4 file predates the pipelining counters and the
        // `pipeline` stamp; they must fill in as zero / `None`.
        let json = r#"{
            "schema_version": 4,
            "algorithm": "dsud",
            "wall_ms": 1.0,
            "counters": {
                "bytes_sent": 9, "messages": 4, "tuples_shipped": 2,
                "feedback_broadcasts": 1, "rounds": 1, "expunged": 0,
                "pruned_at_sites": 0, "prtree_nodes_visited": 0,
                "prtree_pruned_subtrees": 0, "local_skyline_size": 0,
                "progressive_results": 1, "link_retries": 0,
                "link_timeouts": 0, "quarantined_sites": 0,
                "batched_rounds": 2, "multi_probe_node_visits": 40
            },
            "spans": [],
            "phases": [],
            "transport": "inline",
            "threads": 1,
            "batch_size": "auto",
            "progressive": []
        }"#;
        let report: RunReport = serde_json::from_str(json).unwrap();
        assert_eq!(report.counters.batched_rounds, 2);
        assert_eq!(report.counters.pipeline_depth, 0);
        assert_eq!(report.counters.overlapped_rounds, 0);
        assert_eq!(report.counters.refill_overlap_us, 0);
        assert_eq!(report.counters.get(Counter::OverlappedRounds), 0);
        assert_eq!(report.pipeline, None);
    }

    #[test]
    fn schema_five_reports_deserialize_with_zero_session_counters() {
        // A schema-5 file predates the session-layer counters and the
        // `query_id` stamp; they must fill in as zero / `None`.
        let json = r#"{
            "schema_version": 5,
            "algorithm": "edsud",
            "wall_ms": 1.0,
            "counters": {
                "bytes_sent": 9, "messages": 4, "tuples_shipped": 2,
                "feedback_broadcasts": 1, "rounds": 1, "expunged": 0,
                "pruned_at_sites": 0, "prtree_nodes_visited": 0,
                "prtree_pruned_subtrees": 0, "local_skyline_size": 0,
                "progressive_results": 1, "link_retries": 0,
                "link_timeouts": 0, "quarantined_sites": 0,
                "batched_rounds": 2, "multi_probe_node_visits": 40,
                "pipeline_depth": 2, "overlapped_rounds": 1,
                "refill_overlap_us": 300
            },
            "spans": [],
            "phases": [],
            "transport": "tcp",
            "threads": 4,
            "batch_size": "auto",
            "pipeline": "auto",
            "progressive": []
        }"#;
        let report: RunReport = serde_json::from_str(json).unwrap();
        assert_eq!(report.counters.pipeline_depth, 2);
        assert_eq!(report.counters.cache_hits, 0);
        assert_eq!(report.counters.admission_wait_us, 0);
        assert_eq!(report.counters.get(Counter::CacheHits), 0);
        assert_eq!(report.query_id, None);
    }

    #[test]
    fn schema_six_reports_deserialize_with_zero_wire_counters() {
        // A schema-6 file predates the columnar-wire counters; they must
        // fill in as zero rather than failing the parse.
        let json = r#"{
            "schema_version": 6,
            "algorithm": "dsud",
            "wall_ms": 1.0,
            "counters": {
                "bytes_sent": 9, "messages": 4, "tuples_shipped": 2,
                "feedback_broadcasts": 1, "rounds": 1, "expunged": 0,
                "pruned_at_sites": 0, "prtree_nodes_visited": 0,
                "prtree_pruned_subtrees": 0, "local_skyline_size": 0,
                "progressive_results": 1, "link_retries": 0,
                "link_timeouts": 0, "quarantined_sites": 0,
                "batched_rounds": 2, "multi_probe_node_visits": 40,
                "pipeline_depth": 2, "overlapped_rounds": 1,
                "refill_overlap_us": 300, "cache_hits": 1,
                "admission_wait_us": 50
            },
            "spans": [],
            "phases": [],
            "transport": "tcp",
            "threads": 4,
            "batch_size": "auto",
            "pipeline": "auto",
            "query_id": 3,
            "progressive": []
        }"#;
        let report: RunReport = serde_json::from_str(json).unwrap();
        assert_eq!(report.counters.cache_hits, 1);
        assert_eq!(report.counters.columnar_frames, 0);
        assert_eq!(report.counters.bytes_saved, 0);
        assert_eq!(report.counters.decode_ns, 0);
        assert_eq!(report.counters.get(Counter::ColumnarFrames), 0);
        assert_eq!(report.query_id, Some(3));
    }

    #[test]
    fn schema_seven_reports_deserialize_with_zero_recovery_counters() {
        // A schema-7 file predates the recovery-lifecycle counters; they
        // must fill in as zero rather than failing the parse.
        let json = r#"{
            "schema_version": 7,
            "algorithm": "edsud",
            "wall_ms": 1.0,
            "counters": {
                "bytes_sent": 9, "messages": 4, "tuples_shipped": 2,
                "feedback_broadcasts": 1, "rounds": 1, "expunged": 0,
                "pruned_at_sites": 0, "prtree_nodes_visited": 0,
                "prtree_pruned_subtrees": 0, "local_skyline_size": 0,
                "progressive_results": 1, "link_retries": 0,
                "link_timeouts": 0, "quarantined_sites": 0,
                "batched_rounds": 2, "multi_probe_node_visits": 40,
                "pipeline_depth": 2, "overlapped_rounds": 1,
                "refill_overlap_us": 300, "cache_hits": 1,
                "admission_wait_us": 50, "columnar_frames": 3,
                "bytes_saved": 128, "decode_ns": 900
            },
            "spans": [],
            "phases": [],
            "transport": "tcp",
            "threads": 4,
            "batch_size": "auto",
            "pipeline": "auto",
            "query_id": 3,
            "wire": "columnar",
            "progressive": []
        }"#;
        let report: RunReport = serde_json::from_str(json).unwrap();
        assert_eq!(report.counters.columnar_frames, 3);
        assert_eq!(report.counters.rejoins, 0);
        assert_eq!(report.counters.resync_ops, 0);
        assert_eq!(report.counters.heartbeat_misses, 0);
        assert_eq!(report.counters.cancelled, 0);
        assert_eq!(report.counters.get(Counter::Rejoins), 0);
        assert_eq!(report.wire.as_deref(), Some("columnar"));
    }

    #[test]
    fn schema_eight_reports_deserialize_with_zero_topology_counters() {
        // A schema-8 file predates the topology counters and the
        // `topology` / `agg_depth` / `root_fanout` stamps; they must fill
        // in as zero / `None` rather than failing the parse.
        let json = r#"{
            "schema_version": 8,
            "algorithm": "dsud",
            "wall_ms": 1.0,
            "counters": {
                "bytes_sent": 9, "messages": 4, "tuples_shipped": 2,
                "feedback_broadcasts": 1, "rounds": 1, "expunged": 0,
                "pruned_at_sites": 0, "prtree_nodes_visited": 0,
                "prtree_pruned_subtrees": 0, "local_skyline_size": 0,
                "progressive_results": 1, "link_retries": 0,
                "link_timeouts": 0, "quarantined_sites": 0,
                "batched_rounds": 2, "multi_probe_node_visits": 40,
                "pipeline_depth": 2, "overlapped_rounds": 1,
                "refill_overlap_us": 300, "cache_hits": 1,
                "admission_wait_us": 50, "columnar_frames": 3,
                "bytes_saved": 128, "decode_ns": 900,
                "rejoins": 1, "resync_ops": 5, "heartbeat_misses": 3,
                "cancelled": 0
            },
            "spans": [],
            "phases": [],
            "transport": "tcp",
            "threads": 4,
            "batch_size": "auto",
            "pipeline": "auto",
            "query_id": 3,
            "wire": "columnar",
            "progressive": []
        }"#;
        let report: RunReport = serde_json::from_str(json).unwrap();
        assert_eq!(report.counters.rejoins, 1);
        assert_eq!(report.counters.agg_merged_frames, 0);
        assert_eq!(report.counters.agg_fold_ops, 0);
        assert_eq!(report.counters.get(Counter::AggMergedFrames), 0);
        assert_eq!(report.topology, None);
        assert_eq!(report.agg_depth, None);
        assert_eq!(report.root_fanout, None);
    }

    #[test]
    fn schema_nine_reports_deserialize_with_zero_plan_counters() {
        // A schema-9 file predates the plan-phase counter and the `plan` /
        // `sketch_bytes` / `plan_us` / `planned_batch` stamps; they must
        // fill in as zero / `None` rather than failing the parse.
        let json = r#"{
            "schema_version": 9,
            "algorithm": "dsud",
            "wall_ms": 1.0,
            "counters": {
                "bytes_sent": 9, "messages": 4, "tuples_shipped": 2,
                "feedback_broadcasts": 1, "rounds": 1, "expunged": 0,
                "pruned_at_sites": 0, "prtree_nodes_visited": 0,
                "prtree_pruned_subtrees": 0, "local_skyline_size": 0,
                "progressive_results": 1, "link_retries": 0,
                "link_timeouts": 0, "quarantined_sites": 0,
                "batched_rounds": 2, "multi_probe_node_visits": 40,
                "pipeline_depth": 2, "overlapped_rounds": 1,
                "refill_overlap_us": 300, "cache_hits": 1,
                "admission_wait_us": 50, "columnar_frames": 3,
                "bytes_saved": 128, "decode_ns": 900,
                "rejoins": 1, "resync_ops": 5, "heartbeat_misses": 3,
                "cancelled": 0, "agg_merged_frames": 48, "agg_fold_ops": 64
            },
            "spans": [],
            "phases": [],
            "transport": "tcp",
            "threads": 4,
            "batch_size": "auto",
            "pipeline": "auto",
            "query_id": 3,
            "wire": "columnar",
            "topology": "tree:4",
            "agg_depth": 1,
            "root_fanout": 2,
            "progressive": []
        }"#;
        let report: RunReport = serde_json::from_str(json).unwrap();
        assert_eq!(report.counters.agg_merged_frames, 48);
        assert_eq!(report.counters.sketch_merges, 0);
        assert_eq!(report.counters.get(Counter::SketchMerges), 0);
        assert_eq!(report.plan, None);
        assert_eq!(report.sketch_bytes, None);
        assert_eq!(report.plan_us, None);
        assert_eq!(report.planned_batch, None);
    }

    #[test]
    fn plan_counters_flow_into_the_snapshot() {
        let rec = Recorder::enabled();
        rec.add(Counter::SketchMerges, 8);
        let report = rec.report("dsud").unwrap();
        assert_eq!(report.counters.sketch_merges, 8);
        assert_eq!(report.counters.get(Counter::SketchMerges), 8);
        assert_eq!(report.plan, None, "stamped by the caller, not the recorder");
        assert_eq!(report.planned_batch, None);
    }

    #[test]
    fn topology_counters_flow_into_the_snapshot() {
        let rec = Recorder::enabled();
        rec.add(Counter::AggMergedFrames, 48);
        rec.add(Counter::AggFoldOps, 64);
        let report = rec.report("dsud").unwrap();
        assert_eq!(report.counters.agg_merged_frames, 48);
        assert_eq!(report.counters.agg_fold_ops, 64);
        assert_eq!(report.counters.get(Counter::AggFoldOps), 64);
        assert_eq!(report.topology, None, "stamped by the caller, not the recorder");
    }

    #[test]
    fn recovery_counters_flow_into_the_snapshot() {
        let rec = Recorder::enabled();
        rec.incr(Counter::Rejoins);
        rec.add(Counter::ResyncOps, 5);
        rec.add(Counter::HeartbeatMisses, 3);
        rec.incr(Counter::Cancelled);
        let report = rec.report("edsud").unwrap();
        assert_eq!(report.counters.rejoins, 1);
        assert_eq!(report.counters.resync_ops, 5);
        assert_eq!(report.counters.heartbeat_misses, 3);
        assert_eq!(report.counters.cancelled, 1);
    }

    #[test]
    fn wire_counters_flow_into_the_snapshot() {
        let rec = Recorder::enabled();
        rec.add(Counter::ColumnarFrames, 4);
        rec.add(Counter::BytesSaved, 512);
        rec.add(Counter::DecodeNs, 9000);
        let report = rec.report("dsud").unwrap();
        assert_eq!(report.counters.columnar_frames, 4);
        assert_eq!(report.counters.bytes_saved, 512);
        assert_eq!(report.counters.decode_ns, 9000);
    }

    #[test]
    fn session_counters_flow_into_the_snapshot() {
        let rec = Recorder::enabled();
        rec.incr(Counter::CacheHits);
        rec.add(Counter::AdmissionWaitUs, 420);
        let report = rec.report("edsud").unwrap();
        assert_eq!(report.counters.cache_hits, 1);
        assert_eq!(report.counters.admission_wait_us, 420);
        assert_eq!(report.query_id, None);
    }

    #[test]
    fn pipeline_counters_flow_into_the_snapshot() {
        let rec = Recorder::enabled();
        rec.add(Counter::PipelineDepth, 2);
        rec.add(Counter::OverlappedRounds, 9);
        rec.add(Counter::RefillOverlapUs, 1500);
        let report = rec.report("dsud").unwrap();
        assert_eq!(report.counters.pipeline_depth, 2);
        assert_eq!(report.counters.overlapped_rounds, 9);
        assert_eq!(report.counters.refill_overlap_us, 1500);
    }

    #[test]
    fn batch_counters_flow_into_the_snapshot() {
        let rec = Recorder::enabled();
        rec.add(Counter::BatchedRounds, 5);
        rec.add(Counter::MultiProbeNodeVisits, 70);
        let report = rec.report("dsud").unwrap();
        assert_eq!(report.counters.batched_rounds, 5);
        assert_eq!(report.counters.multi_probe_node_visits, 70);
    }

    #[test]
    fn fault_counters_flow_into_the_snapshot() {
        let rec = Recorder::enabled();
        rec.add(Counter::LinkRetries, 3);
        rec.incr(Counter::LinkTimeouts);
        rec.incr(Counter::QuarantinedSites);
        let report = rec.report("dsud").unwrap();
        assert_eq!(report.counters.link_retries, 3);
        assert_eq!(report.counters.link_timeouts, 1);
        assert_eq!(report.counters.quarantined_sites, 1);
    }

    #[test]
    fn report_round_trips_through_json() {
        let rec = Recorder::enabled();
        {
            let _query = rec.span("query:dsud");
            let _round = rec.span("round");
            rec.incr(Counter::Rounds);
            rec.add(Counter::BytesSent, 1234);
            rec.progressive(3, 7, 0.625, 19);
        }
        let report = rec.report("dsud").unwrap();
        let json = serde_json::to_string_pretty(&report).unwrap();
        let back: RunReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn schema_version_is_stamped_into_the_json() {
        let report = Recorder::enabled().report("edsud").unwrap();
        assert_eq!(report.schema_version, SCHEMA_VERSION);
        let json = serde_json::to_string(&report).unwrap();
        assert!(json.contains("\"schema_version\""));
        assert!(json.contains("\"algorithm\""));
    }
}
