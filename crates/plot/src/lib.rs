//! Minimal, dependency-free SVG line charts.
//!
//! The experiment harness regenerates the paper's figures as data series;
//! this crate turns them into self-contained SVG images so a reproduction
//! run leaves behind actual plots (`target/experiments/*.svg`), not just
//! JSON. Two chart shapes cover every figure in the paper:
//!
//! * [`CategoryChart`] — series over a shared categorical x-axis
//!   (`d=2..5`, `m=40..100`, `q=0.3..0.9`): Figs. 8–11, 14;
//! * [`XyChart`] — series of `(x, y)` points (bandwidth / CPU time versus
//!   number of reported skylines): Figs. 12–13.
//!
//! # Example
//!
//! ```
//! use dsud_plot::CategoryChart;
//!
//! let svg = CategoryChart::new("Fig 9", "sites", "tuples")
//!     .ticks(["m=40", "m=60", "m=80"])
//!     .series("DSUD", [9187.0, 16540.0, 25413.0])
//!     .series("e-DSUD", [4138.0, 6027.0, 7950.0])
//!     .to_svg();
//! assert!(svg.starts_with("<svg"));
//! assert!(svg.contains("e-DSUD"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;

/// Canvas width in pixels.
const WIDTH: f64 = 640.0;
/// Canvas height in pixels.
const HEIGHT: f64 = 420.0;
/// Margins: left, right, top, bottom.
const MARGIN: (f64, f64, f64, f64) = (70.0, 160.0, 40.0, 55.0);

/// Line/marker colors cycled across series.
const PALETTE: [&str; 6] = ["#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b"];

/// One named series of y-values (category charts) or points (xy charts).
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    label: String,
    points: Vec<(f64, f64)>,
}

/// A chart over a shared categorical x-axis.
#[derive(Debug, Clone)]
pub struct CategoryChart {
    title: String,
    x_label: String,
    y_label: String,
    ticks: Vec<String>,
    series: Vec<Series>,
}

impl CategoryChart {
    /// Creates an empty chart.
    pub fn new(
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        CategoryChart {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            ticks: Vec::new(),
            series: Vec::new(),
        }
    }

    /// Sets the x-axis tick labels (one per category).
    pub fn ticks<I, S>(mut self, ticks: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.ticks = ticks.into_iter().map(Into::into).collect();
        self
    }

    /// Adds a series; values align with the tick labels.
    pub fn series<I>(mut self, label: impl Into<String>, values: I) -> Self
    where
        I: IntoIterator<Item = f64>,
    {
        let points = values.into_iter().enumerate().map(|(i, y)| (i as f64, y)).collect();
        self.series.push(Series { label: label.into(), points });
        self
    }

    /// Renders the chart.
    pub fn to_svg(&self) -> String {
        let x_max = (self.ticks.len().max(1) - 1) as f64;
        let tick_positions: Vec<(f64, String)> =
            self.ticks.iter().enumerate().map(|(i, t)| (i as f64, t.clone())).collect();
        render(
            &self.title,
            &self.x_label,
            &self.y_label,
            &self.series,
            (0.0, x_max.max(1.0)),
            &tick_positions,
        )
    }
}

/// A chart of numeric `(x, y)` series.
#[derive(Debug, Clone)]
pub struct XyChart {
    title: String,
    x_label: String,
    y_label: String,
    series: Vec<Series>,
}

impl XyChart {
    /// Creates an empty chart.
    pub fn new(
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        XyChart {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: Vec::new(),
        }
    }

    /// Adds a series of points.
    pub fn series<I>(mut self, label: impl Into<String>, points: I) -> Self
    where
        I: IntoIterator<Item = (f64, f64)>,
    {
        self.series.push(Series { label: label.into(), points: points.into_iter().collect() });
        self
    }

    /// Renders the chart.
    pub fn to_svg(&self) -> String {
        let (lo, hi) = x_range(&self.series);
        let ticks: Vec<(f64, String)> =
            nice_ticks(lo, hi).into_iter().map(|v| (v, format_tick(v))).collect();
        render(&self.title, &self.x_label, &self.y_label, &self.series, (lo, hi), &ticks)
    }
}

fn x_range(series: &[Series]) -> (f64, f64) {
    let xs = series.iter().flat_map(|s| s.points.iter().map(|&(x, _)| x));
    let lo = xs.clone().fold(f64::INFINITY, f64::min);
    let hi = xs.fold(f64::NEG_INFINITY, f64::max);
    if lo.is_finite() && hi.is_finite() && hi > lo {
        (lo, hi)
    } else if lo.is_finite() {
        (lo - 0.5, lo + 0.5)
    } else {
        (0.0, 1.0)
    }
}

/// Rounds `raw` to a 1/2/5 × 10^k "nice" step.
fn nice_step(raw: f64) -> f64 {
    if raw <= 0.0 || !raw.is_finite() {
        return 1.0;
    }
    let mag = 10f64.powf(raw.log10().floor());
    let frac = raw / mag;
    let nice = if frac <= 1.0 {
        1.0
    } else if frac <= 2.0 {
        2.0
    } else if frac <= 5.0 {
        5.0
    } else {
        10.0
    };
    nice * mag
}

/// About five nice tick values covering `[lo, hi]`.
fn nice_ticks(lo: f64, hi: f64) -> Vec<f64> {
    let step = nice_step((hi - lo) / 4.0);
    let start = (lo / step).floor() * step;
    let mut out = Vec::new();
    let mut v = start;
    while v <= hi + step * 0.5 {
        if v >= lo - step * 0.5 {
            out.push(v);
        }
        v += step;
    }
    out
}

fn format_tick(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 1_000_000.0 {
        format!("{:.1}M", v / 1e6)
    } else if v.abs() >= 1_000.0 {
        format!("{:.0}k", v / 1e3)
    } else if v.abs() >= 1.0 && v.fract() == 0.0 {
        format!("{v:.0}")
    } else {
        format!("{v:.2}")
    }
}

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;")
}

/// Shared renderer: axes, grid, polylines, markers, legend.
fn render(
    title: &str,
    x_label: &str,
    y_label: &str,
    series: &[Series],
    x_range: (f64, f64),
    x_ticks: &[(f64, String)],
) -> String {
    let (ml, mr, mt, mb) = MARGIN;
    let plot_w = WIDTH - ml - mr;
    let plot_h = HEIGHT - mt - mb;

    let ys = series.iter().flat_map(|s| s.points.iter().map(|&(_, y)| y));
    let y_hi = ys.clone().fold(f64::NEG_INFINITY, f64::max);
    let y_lo = ys.fold(f64::INFINITY, f64::min).min(0.0);
    let (y_lo, y_hi) = if y_hi.is_finite() && y_hi > y_lo { (y_lo, y_hi) } else { (0.0, 1.0) };
    let y_ticks = nice_ticks(y_lo, y_hi);
    let y_top = y_ticks.last().copied().unwrap_or(y_hi).max(y_hi);

    let sx = |x: f64| -> f64 {
        let span = (x_range.1 - x_range.0).max(f64::MIN_POSITIVE);
        ml + (x - x_range.0) / span * plot_w
    };
    let sy = |y: f64| -> f64 {
        let span = (y_top - y_lo).max(f64::MIN_POSITIVE);
        mt + plot_h - (y - y_lo) / span * plot_h
    };

    let mut svg = String::with_capacity(8 * 1024);
    let _ = write!(
        svg,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{WIDTH}" height="{HEIGHT}" viewBox="0 0 {WIDTH} {HEIGHT}" font-family="sans-serif">"#
    );
    let _ = write!(svg, r#"<rect width="{WIDTH}" height="{HEIGHT}" fill="white"/>"#);
    // Title and axis labels.
    let _ = write!(
        svg,
        r#"<text x="{}" y="24" text-anchor="middle" font-size="15" font-weight="bold">{}</text>"#,
        ml + plot_w / 2.0,
        xml_escape(title)
    );
    let _ = write!(
        svg,
        r#"<text x="{}" y="{}" text-anchor="middle" font-size="12">{}</text>"#,
        ml + plot_w / 2.0,
        HEIGHT - 12.0,
        xml_escape(x_label)
    );
    let _ = write!(
        svg,
        r#"<text x="16" y="{}" text-anchor="middle" font-size="12" transform="rotate(-90 16 {})">{}</text>"#,
        mt + plot_h / 2.0,
        mt + plot_h / 2.0,
        xml_escape(y_label)
    );

    // Grid and y ticks.
    for &v in &y_ticks {
        let y = sy(v);
        let _ = write!(
            svg,
            r##"<line x1="{ml}" y1="{y}" x2="{}" y2="{y}" stroke="#ddd" stroke-width="1"/>"##,
            ml + plot_w
        );
        let _ = write!(
            svg,
            r#"<text x="{}" y="{}" text-anchor="end" font-size="11">{}</text>"#,
            ml - 6.0,
            y + 4.0,
            format_tick(v)
        );
    }
    // X ticks.
    for (x, label) in x_ticks {
        let px = sx(*x);
        let _ = write!(
            svg,
            r##"<line x1="{px}" y1="{}" x2="{px}" y2="{}" stroke="#999" stroke-width="1"/>"##,
            mt + plot_h,
            mt + plot_h + 4.0
        );
        let _ = write!(
            svg,
            r#"<text x="{px}" y="{}" text-anchor="middle" font-size="11">{}</text>"#,
            mt + plot_h + 18.0,
            xml_escape(label)
        );
    }
    // Axes.
    let _ =
        write!(svg, r#"<line x1="{ml}" y1="{mt}" x2="{ml}" y2="{}" stroke="black"/>"#, mt + plot_h);
    let _ = write!(
        svg,
        r#"<line x1="{ml}" y1="{}" x2="{}" y2="{}" stroke="black"/>"#,
        mt + plot_h,
        ml + plot_w,
        mt + plot_h
    );

    // Series.
    for (i, s) in series.iter().enumerate() {
        let color = PALETTE[i % PALETTE.len()];
        if s.points.len() > 1 {
            let path: Vec<String> =
                s.points.iter().map(|&(x, y)| format!("{:.1},{:.1}", sx(x), sy(y))).collect();
            let _ = write!(
                svg,
                r#"<polyline fill="none" stroke="{color}" stroke-width="2" points="{}"/>"#,
                path.join(" ")
            );
        }
        for &(x, y) in &s.points {
            let _ = write!(
                svg,
                r#"<circle cx="{:.1}" cy="{:.1}" r="3" fill="{color}"/>"#,
                sx(x),
                sy(y)
            );
        }
        // Legend entry.
        let ly = mt + 14.0 + i as f64 * 18.0;
        let lx = ml + plot_w + 14.0;
        let _ = write!(
            svg,
            r#"<line x1="{lx}" y1="{ly}" x2="{}" y2="{ly}" stroke="{color}" stroke-width="2"/>"#,
            lx + 20.0
        );
        let _ = write!(
            svg,
            r#"<text x="{}" y="{}" font-size="11">{}</text>"#,
            lx + 26.0,
            ly + 4.0,
            xml_escape(&s.label)
        );
    }
    svg.push_str("</svg>");
    svg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn category_chart_renders_all_series() {
        let svg = CategoryChart::new("Fig 8", "dimensionality", "tuples")
            .ticks(["d=2", "d=3", "d=4"])
            .series("DSUD", [100.0, 200.0, 300.0])
            .series("e-DSUD", [50.0, 80.0, 120.0])
            .to_svg();
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        assert_eq!(svg.matches("<polyline").count(), 2);
        assert_eq!(svg.matches("<circle").count(), 6);
        assert!(svg.contains("DSUD"));
        assert!(svg.contains("d=3"));
    }

    #[test]
    fn xy_chart_scales_points_into_canvas() {
        let svg = XyChart::new("Fig 12", "reported", "tuples")
            .series("e-DSUD", [(1.0, 500.0), (50.0, 4000.0), (92.0, 7200.0)])
            .to_svg();
        assert!(svg.contains("<polyline"));
        // Every coordinate must land inside the canvas.
        for cap in svg.split("cx=\"").skip(1) {
            let x: f64 = cap.split('"').next().unwrap().parse().unwrap();
            assert!((0.0..=WIDTH).contains(&x), "x={x}");
        }
        for cap in svg.split("cy=\"").skip(1) {
            let y: f64 = cap.split('"').next().unwrap().parse().unwrap();
            assert!((0.0..=HEIGHT).contains(&y), "y={y}");
        }
    }

    #[test]
    fn empty_and_single_point_charts_do_not_panic() {
        let empty = CategoryChart::new("empty", "x", "y").to_svg();
        assert!(empty.starts_with("<svg"));
        let single = XyChart::new("one", "x", "y").series("s", [(2.0, 5.0)]).to_svg();
        assert!(single.contains("<circle"));
        assert!(!single.contains("<polyline")); // a single point draws no line
    }

    #[test]
    fn nice_steps_are_1_2_5() {
        assert_eq!(nice_step(0.7), 1.0);
        assert_eq!(nice_step(1.3), 2.0);
        assert_eq!(nice_step(3.9), 5.0);
        assert_eq!(nice_step(7.2), 10.0);
        assert_eq!(nice_step(130.0), 200.0);
        assert_eq!(nice_step(0.0), 1.0);
    }

    #[test]
    fn tick_formatting_is_compact() {
        assert_eq!(format_tick(0.0), "0");
        assert_eq!(format_tick(2_500_000.0), "2.5M");
        assert_eq!(format_tick(16_540.0), "17k");
        assert_eq!(format_tick(42.0), "42");
        assert_eq!(format_tick(0.3), "0.30");
    }

    #[test]
    fn titles_are_escaped() {
        let svg = CategoryChart::new("a < b & c", "x", "y").to_svg();
        assert!(svg.contains("a &lt; b &amp; c"));
    }
}
