//! Property-based validation of the UTA coordinator against the
//! centralized reference on arbitrary small inputs.

use proptest::prelude::*;

use dsud_uncertain::{
    probabilistic_skyline, Probability, SubspaceMask, TupleId, UncertainDb, UncertainTuple,
};
use dsud_vertical::{ColumnSite, UtaCoordinator};

fn arb_tuples(dims: usize, max_n: usize) -> impl Strategy<Value = Vec<UncertainTuple>> {
    prop::collection::vec((prop::collection::vec(0.0f64..50.0, dims), 0.05f64..=1.0), 1..=max_n)
        .prop_map(move |rows| {
            rows.into_iter()
                .enumerate()
                .map(|(i, (values, p))| {
                    UncertainTuple::new(
                        TupleId::new(0, i as u64),
                        values,
                        Probability::new(p).unwrap(),
                    )
                    .unwrap()
                })
                .collect()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn uta_equals_centralized(tuples in arb_tuples(3, 80), q in 0.05f64..=0.95) {
        let db = UncertainDb::from_tuples(3, tuples.clone()).unwrap();
        let expected: Vec<TupleId> = probabilistic_skyline(&db, q, SubspaceMask::full(3).unwrap())
            .unwrap()
            .into_iter()
            .map(|e| e.tuple.id())
            .collect();
        let columns = ColumnSite::partition(&tuples).unwrap();
        let outcome = UtaCoordinator::new(q).unwrap().run(&columns).unwrap();
        let got: Vec<TupleId> = outcome.skyline.iter().map(|e| e.tuple.id()).collect();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn access_counts_are_bounded(tuples in arb_tuples(2, 60)) {
        let n = tuples.len() as u64;
        let columns = ColumnSite::partition(&tuples).unwrap();
        let outcome = UtaCoordinator::new(0.3).unwrap().run(&columns).unwrap();
        // At most every entry once per column (sorted), plus one random
        // access per missing column per resolved tuple.
        prop_assert!(outcome.stats.sorted_accesses <= 2 * n);
        prop_assert!(outcome.stats.random_accesses <= n);
        prop_assert!(outcome.stats.resolved <= n);
    }
}
