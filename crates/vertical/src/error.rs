use std::fmt;

/// Errors produced by vertically partitioned skyline processing.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// The tuple set was empty or tuples disagreed on dimensionality.
    InvalidData(&'static str),
    /// The probability threshold was outside `(0, 1]`.
    InvalidThreshold(f64),
    /// A random access referenced an id the column does not hold.
    UnknownId,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidData(what) => write!(f, "invalid input data: {what}"),
            Error::InvalidThreshold(q) => {
                write!(f, "threshold {q} is outside the interval (0, 1]")
            }
            Error::UnknownId => write!(f, "random access to an unknown tuple id"),
        }
    }
}

impl std::error::Error for Error {}
