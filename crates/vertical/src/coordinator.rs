use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use dsud_uncertain::{dominates, Probability, SkylineEntry, TupleId, UncertainTuple};

use crate::{ColumnSite, Error};

/// Cost counters of one UTA run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct VerticalStats {
    /// Total sorted accesses across all columns.
    pub sorted_accesses: u64,
    /// Total random accesses across all columns.
    pub random_accesses: u64,
    /// Tuples fully resolved at the coordinator.
    pub resolved: u64,
    /// Round-robin rounds performed.
    pub rounds: u64,
}

/// Result of a vertically partitioned probabilistic skyline query.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VerticalOutcome {
    /// Qualified tuples with exact skyline probabilities, descending.
    pub skyline: Vec<SkylineEntry>,
    /// Access-cost counters.
    pub stats: VerticalStats,
}

/// The UTA coordinator: answers a threshold probabilistic skyline query
/// over column sites with bounded sorted/random accesses (see the crate
/// docs for the algorithm and its correctness argument).
#[derive(Debug, Clone, Copy)]
pub struct UtaCoordinator {
    q: f64,
    check_every: u64,
}

impl UtaCoordinator {
    /// Creates a coordinator for threshold `q`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidThreshold`] if `q` is outside `(0, 1]`.
    pub fn new(q: f64) -> Result<Self, Error> {
        if !(q > 0.0 && q <= 1.0) {
            return Err(Error::InvalidThreshold(q));
        }
        Ok(UtaCoordinator { q, check_every: 8 })
    }

    /// How often (in rounds) the stopping conditions are evaluated; the
    /// checks cost `O(resolved²)`, so sparser checking trades a few extra
    /// accesses for less coordinator CPU.
    pub fn check_every(mut self, rounds: u64) -> Self {
        self.check_every = rounds.max(1);
        self
    }

    /// Runs the query against the column sites.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidData`] for an empty column list and
    /// propagates [`Error::UnknownId`] if the columns disagree on the tuple
    /// population (malformed partitioning).
    pub fn run(&self, columns: &[ColumnSite]) -> Result<VerticalOutcome, Error> {
        if columns.is_empty() {
            return Err(Error::InvalidData("no columns"));
        }
        let d = columns.len();
        let mut resolved: HashMap<TupleId, (Vec<f64>, f64)> = HashMap::new();
        let mut stats = VerticalStats::default();

        loop {
            stats.rounds += 1;
            let mut progressed = false;
            for (j, column) in columns.iter().enumerate() {
                let Some((id, value, prob)) = column.sorted_access() else { continue };
                progressed = true;
                if resolved.contains_key(&id) {
                    continue;
                }
                // TA-style immediate resolution: fetch the missing columns.
                let mut values = vec![0.0; d];
                values[j] = value;
                for (k, other) in columns.iter().enumerate() {
                    if k != j {
                        values[k] = other.random_access(id)?.0;
                    }
                }
                resolved.insert(id, (values, prob));
            }
            if !progressed {
                break; // every column exhausted
            }

            if stats.rounds % self.check_every != 0 {
                continue;
            }

            // Unseen tuples exist only while every column still has
            // unserved entries (each tuple appears in each column).
            let unseen_possible = columns.iter().all(|c| !c.is_exhausted());
            if unseen_possible {
                let depths: Vec<f64> = match columns.iter().map(ColumnSite::depth).collect() {
                    Some(depths) => depths,
                    None => continue,
                };
                // Bound on any unseen tuple's skyline probability: resolved
                // tuples strictly inside the depth box dominate everything
                // unseen; an unseen tuple's own probability can be 1.
                let mut survival_unseen = 1.0;
                for (values, prob) in resolved.values() {
                    if below_depths(values, &depths) {
                        survival_unseen *= 1.0 - prob;
                    }
                }
                if survival_unseen >= self.q {
                    continue;
                }
            }

            // Candidates: resolved tuples whose probability over *resolved*
            // dominators (an upper bound on the truth) still meets q. Each
            // must be covered — depths strictly past its values — so every
            // dominator is guaranteed resolved.
            let all_covered =
                self.candidates(&resolved).all(|(values, _)| covered(values, columns));
            if all_covered {
                break;
            }
        }

        // Exact skyline probabilities over the resolved set.
        let mut skyline: Vec<SkylineEntry> = Vec::new();
        for (&id, (values, prob)) in &resolved {
            let p = prob * survival_in(&resolved, values);
            if p >= self.q {
                let tuple = UncertainTuple::new(
                    id,
                    values.clone(),
                    Probability::new(*prob).expect("columns carry valid probabilities"),
                )
                .expect("columns carry valid values");
                skyline.push(SkylineEntry { tuple, probability: p });
            }
        }
        skyline.sort_by(|a, b| {
            b.probability
                .partial_cmp(&a.probability)
                .expect("probabilities are finite")
                .then_with(|| a.tuple.id().cmp(&b.tuple.id()))
        });

        for c in columns {
            let s = c.stats();
            stats.sorted_accesses += s.sorted;
            stats.random_accesses += s.random;
        }
        stats.resolved = resolved.len() as u64;
        Ok(VerticalOutcome { skyline, stats })
    }

    /// Resolved tuples that could still qualify, by the resolved-dominator
    /// upper bound.
    fn candidates<'a>(
        &'a self,
        resolved: &'a HashMap<TupleId, (Vec<f64>, f64)>,
    ) -> impl Iterator<Item = (&'a Vec<f64>, f64)> {
        resolved.values().filter_map(move |(values, prob)| {
            let bound = prob * survival_in(resolved, values);
            (bound >= self.q).then_some((values, bound))
        })
    }
}

/// `∏ (1 − P)` over resolved tuples strictly dominating `point`.
fn survival_in(resolved: &HashMap<TupleId, (Vec<f64>, f64)>, point: &[f64]) -> f64 {
    resolved
        .values()
        .filter(|(values, _)| dominates(values, point))
        .map(|(_, prob)| 1.0 - prob)
        .product()
}

/// Whether every value lies strictly inside the depth box with at least
/// one strict dimension — i.e. the tuple dominates every unseen tuple.
fn below_depths(values: &[f64], depths: &[f64]) -> bool {
    let mut strict = false;
    for (v, depth) in values.iter().zip(depths) {
        if v > depth {
            return false;
        }
        if v < depth {
            strict = true;
        }
    }
    strict
}

/// Whether sorted access has moved strictly past this tuple on every
/// dimension (exhausted columns count as past everything).
fn covered(values: &[f64], columns: &[ColumnSite]) -> bool {
    columns
        .iter()
        .zip(values)
        .all(|(column, &v)| column.is_exhausted() || column.depth().is_some_and(|depth| depth > v))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsud_uncertain::{probabilistic_skyline, SubspaceMask, UncertainDb};

    fn tuple(seq: u64, values: Vec<f64>, p: f64) -> UncertainTuple {
        UncertainTuple::new(TupleId::new(0, seq), values, Probability::new(p).unwrap()).unwrap()
    }

    fn random_tuples(n: usize, dims: usize, seed: u64) -> Vec<UncertainTuple> {
        let mut state = seed.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 11) as f64) / ((1u64 << 53) as f64)
        };
        (0..n)
            .map(|i| {
                let values = (0..dims).map(|_| (next() * 1000.0).round() / 10.0).collect();
                let p = (next() * 0.99 + 0.005).clamp(0.005, 1.0);
                tuple(i as u64, values, p)
            })
            .collect()
    }

    fn assert_matches_centralized(tuples: Vec<UncertainTuple>, dims: usize, q: f64) {
        let db = UncertainDb::from_tuples(dims, tuples.clone()).unwrap();
        let expected = probabilistic_skyline(&db, q, SubspaceMask::full(dims).unwrap()).unwrap();
        let columns = ColumnSite::partition(&tuples).unwrap();
        let outcome = UtaCoordinator::new(q).unwrap().run(&columns).unwrap();
        assert_eq!(
            outcome.skyline.iter().map(|e| e.tuple.id()).collect::<Vec<_>>(),
            expected.iter().map(|e| e.tuple.id()).collect::<Vec<_>>(),
            "answer mismatch at q={q}"
        );
        for (got, want) in outcome.skyline.iter().zip(&expected) {
            assert!((got.probability - want.probability).abs() < 1e-9);
        }
    }

    #[test]
    fn matches_centralized_across_thresholds() {
        for q in [0.1, 0.3, 0.6, 0.9] {
            assert_matches_centralized(random_tuples(300, 2, 1), 2, q);
        }
    }

    #[test]
    fn matches_centralized_across_dimensionalities() {
        for dims in [2, 3, 4] {
            assert_matches_centralized(random_tuples(250, dims, dims as u64), dims, 0.3);
        }
    }

    #[test]
    fn saves_accesses_on_easy_inputs() {
        // A strong near-origin tuple dominates everything: sorted access
        // should stop long before exhausting the columns.
        let mut tuples = random_tuples(2_000, 2, 9);
        tuples.push(tuple(999_999, vec![0.0, 0.0], 0.99));
        let columns = ColumnSite::partition(&tuples).unwrap();
        let outcome = UtaCoordinator::new(0.3).unwrap().run(&columns).unwrap();
        let full = 2 * tuples.len() as u64;
        assert!(
            outcome.stats.sorted_accesses < full / 4,
            "{} sorted accesses of {} possible",
            outcome.stats.sorted_accesses,
            full
        );
        // And it is still exactly correct.
        let db = UncertainDb::from_tuples(2, tuples).unwrap();
        let expected = probabilistic_skyline(&db, 0.3, SubspaceMask::full(2).unwrap()).unwrap();
        assert_eq!(outcome.skyline.len(), expected.len());
    }

    #[test]
    fn handles_duplicate_values_at_the_boundary() {
        // Ties on the depth boundary must not hide dominators.
        let tuples = vec![
            tuple(0, vec![1.0, 1.0], 0.5),
            tuple(1, vec![1.0, 1.0], 0.5),
            tuple(2, vec![1.0, 2.0], 0.9),
            tuple(3, vec![2.0, 1.0], 0.9),
            tuple(4, vec![2.0, 2.0], 0.9),
        ];
        assert_matches_centralized(tuples, 2, 0.2);
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(UtaCoordinator::new(0.0).is_err());
        assert!(UtaCoordinator::new(1.5).is_err());
        let coord = UtaCoordinator::new(0.3).unwrap();
        assert!(coord.run(&[]).is_err());
    }

    #[test]
    fn check_interval_does_not_change_the_answer() {
        let tuples = random_tuples(400, 3, 21);
        let columns_a = ColumnSite::partition(&tuples).unwrap();
        let a = UtaCoordinator::new(0.3).unwrap().check_every(1).run(&columns_a).unwrap();
        let columns_b = ColumnSite::partition(&tuples).unwrap();
        let b = UtaCoordinator::new(0.3).unwrap().check_every(64).run(&columns_b).unwrap();
        assert_eq!(
            a.skyline.iter().map(|e| e.tuple.id()).collect::<Vec<_>>(),
            b.skyline.iter().map(|e| e.tuple.id()).collect::<Vec<_>>()
        );
        // Sparser checks may do more accesses, never fewer.
        assert!(b.stats.sorted_accesses >= a.stats.sorted_accesses);
    }
}
