use std::cell::Cell;
use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use dsud_uncertain::{TupleId, UncertainTuple};

use crate::Error;

/// Access counters of one column site — the cost model of the
/// threshold-algorithm literature.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AccessStats {
    /// Entries served in ascending value order.
    pub sorted: u64,
    /// Entries served by tuple id.
    pub random: u64,
}

/// One attribute column of a vertically partitioned uncertain relation.
///
/// Serves *sorted access* (next entry in ascending value order) and
/// *random access* (value by tuple id). The tuple's existential
/// probability is metadata delivered with either access kind.
#[derive(Debug, Clone)]
pub struct ColumnSite {
    /// `(value, id, prob)` ascending by value, ties by id.
    sorted: Vec<(f64, TupleId, f64)>,
    by_id: HashMap<TupleId, (f64, f64)>,
    cursor: Cell<usize>,
    stats: Cell<AccessStats>,
}

impl ColumnSite {
    /// Builds one column from complete tuples, keeping dimension `dim`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidData`] if `tuples` is empty or `dim` is out
    /// of range for any tuple.
    pub fn from_tuples(tuples: &[UncertainTuple], dim: usize) -> Result<Self, Error> {
        if tuples.is_empty() {
            return Err(Error::InvalidData("no tuples"));
        }
        if tuples.iter().any(|t| dim >= t.dims()) {
            return Err(Error::InvalidData("dimension out of range"));
        }
        let mut sorted: Vec<(f64, TupleId, f64)> =
            tuples.iter().map(|t| (t.values()[dim], t.id(), t.prob().get())).collect();
        sorted.sort_by(|a, b| {
            a.0.partial_cmp(&b.0).expect("finite values").then_with(|| a.1.cmp(&b.1))
        });
        let by_id = sorted.iter().map(|&(v, id, p)| (id, (v, p))).collect();
        Ok(ColumnSite {
            sorted,
            by_id,
            cursor: Cell::new(0),
            stats: Cell::new(AccessStats::default()),
        })
    }

    /// Vertically partitions complete tuples into one column per dimension.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidData`] for an empty set or mixed
    /// dimensionalities.
    pub fn partition(tuples: &[UncertainTuple]) -> Result<Vec<ColumnSite>, Error> {
        let Some(first) = tuples.first() else {
            return Err(Error::InvalidData("no tuples"));
        };
        let dims = first.dims();
        if tuples.iter().any(|t| t.dims() != dims) {
            return Err(Error::InvalidData("mixed dimensionalities"));
        }
        (0..dims).map(|d| ColumnSite::from_tuples(tuples, d)).collect()
    }

    /// Sorted access: the next `(id, value, prob)` in ascending value
    /// order, or `None` when the column is exhausted.
    pub fn sorted_access(&self) -> Option<(TupleId, f64, f64)> {
        let pos = self.cursor.get();
        let &(value, id, prob) = self.sorted.get(pos)?;
        self.cursor.set(pos + 1);
        let mut s = self.stats.get();
        s.sorted += 1;
        self.stats.set(s);
        Some((id, value, prob))
    }

    /// Random access: this column's value (and the tuple's probability)
    /// for `id`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownId`] if the column has no such tuple.
    pub fn random_access(&self, id: TupleId) -> Result<(f64, f64), Error> {
        let mut s = self.stats.get();
        s.random += 1;
        self.stats.set(s);
        self.by_id.get(&id).copied().ok_or(Error::UnknownId)
    }

    /// The deepest value sorted access has served, if any.
    pub fn depth(&self) -> Option<f64> {
        let pos = self.cursor.get();
        if pos == 0 {
            None
        } else {
            Some(self.sorted[pos - 1].0)
        }
    }

    /// Whether sorted access has served every entry.
    pub fn is_exhausted(&self) -> bool {
        self.cursor.get() >= self.sorted.len()
    }

    /// Number of entries in the column.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the column holds no entries (never true for constructed
    /// columns; exists for API completeness).
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Access counters so far.
    pub fn stats(&self) -> AccessStats {
        self.stats.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsud_uncertain::Probability;

    fn tuple(seq: u64, values: Vec<f64>, p: f64) -> UncertainTuple {
        UncertainTuple::new(TupleId::new(0, seq), values, Probability::new(p).unwrap()).unwrap()
    }

    fn sample() -> Vec<UncertainTuple> {
        vec![
            tuple(0, vec![3.0, 10.0], 0.5),
            tuple(1, vec![1.0, 30.0], 0.6),
            tuple(2, vec![2.0, 20.0], 0.7),
        ]
    }

    #[test]
    fn sorted_access_serves_ascending() {
        let col = ColumnSite::from_tuples(&sample(), 0).unwrap();
        let order: Vec<f64> =
            std::iter::from_fn(|| col.sorted_access().map(|(_, v, _)| v)).collect();
        assert_eq!(order, vec![1.0, 2.0, 3.0]);
        assert!(col.is_exhausted());
        assert_eq!(col.stats().sorted, 3);
        assert!(col.sorted_access().is_none());
    }

    #[test]
    fn depth_tracks_last_served_value() {
        let col = ColumnSite::from_tuples(&sample(), 1).unwrap();
        assert_eq!(col.depth(), None);
        col.sorted_access();
        assert_eq!(col.depth(), Some(10.0));
        col.sorted_access();
        assert_eq!(col.depth(), Some(20.0));
    }

    #[test]
    fn random_access_by_id() {
        let col = ColumnSite::from_tuples(&sample(), 1).unwrap();
        assert_eq!(col.random_access(TupleId::new(0, 2)).unwrap(), (20.0, 0.7));
        assert_eq!(col.random_access(TupleId::new(9, 9)), Err(Error::UnknownId));
        assert_eq!(col.stats().random, 2);
    }

    #[test]
    fn partition_builds_one_column_per_dim() {
        let cols = ColumnSite::partition(&sample()).unwrap();
        assert_eq!(cols.len(), 2);
        assert_eq!(cols[0].len(), 3);
        assert!(ColumnSite::partition(&[]).is_err());
    }

    #[test]
    fn rejects_bad_dimension() {
        assert!(ColumnSite::from_tuples(&sample(), 5).is_err());
    }
}
