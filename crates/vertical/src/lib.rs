//! Probabilistic skylines over **vertically partitioned** uncertain data —
//! the DSUD paper's stated future work (Section 8): "vertical partitioning
//! between distributed data still exists in the context of uncertain data.
//! Thus, studying new algorithms to those cases is an important future
//! work."
//!
//! # Setting
//!
//! Instead of every site holding complete tuples (horizontal partitioning,
//! the main DSUD scenario), here each of `d` sites holds **one attribute
//! column**: a list of `(tuple id, value)` pairs it can serve in ascending
//! value order (*sorted access*) or by id (*random access*) — the classic
//! web-source model of Balke et al.'s distributed skyline and Fagin's
//! Threshold Algorithm. Existential probabilities are tuple-level metadata
//! returned with a tuple's first access.
//!
//! # The UTA algorithm (Uncertain Threshold Algorithm)
//!
//! The coordinator performs round-robin sorted accesses and immediately
//! resolves each newly discovered tuple with random accesses (TA style).
//! Two facts bound the unseen world, where `depth_j` is the last value
//! sorted access has returned from column `j`:
//!
//! 1. every unseen tuple `u` has `u_j >= depth_j` on every dimension, so a
//!    resolved tuple `t` with `t_j <= depth_j` everywhere (strictly
//!    somewhere) dominates *all* unseen tuples; the product of their
//!    `(1 − P(t))` upper-bounds any unseen tuple's skyline probability;
//! 2. a candidate `c` is **covered** once `depth_j > c_j` on every
//!    dimension (or the column is exhausted): any dominator of `c` has
//!    values below the depths everywhere and has therefore been seen.
//!
//! Sorted access stops when (1) falls below the threshold `q` — no unseen
//! tuple can be an answer — *and* every still-viable candidate is covered —
//! no unseen tuple can change a reported probability. Skyline probabilities
//! computed over the resolved set are then **exact**, which the test suite
//! verifies against the centralized reference on random inputs.
//!
//! # Example
//!
//! ```
//! use dsud_uncertain::{Probability, TupleId, UncertainTuple};
//! use dsud_vertical::{ColumnSite, UtaCoordinator};
//!
//! # fn main() -> Result<(), dsud_vertical::Error> {
//! let tuples = vec![
//!     UncertainTuple::new(TupleId::new(0, 0), vec![1.0, 4.0], Probability::new(0.9).unwrap()).unwrap(),
//!     UncertainTuple::new(TupleId::new(0, 1), vec![3.0, 1.0], Probability::new(0.8).unwrap()).unwrap(),
//!     UncertainTuple::new(TupleId::new(0, 2), vec![4.0, 5.0], Probability::new(0.7).unwrap()).unwrap(),
//! ];
//! let columns = ColumnSite::partition(&tuples)?;
//! let outcome = UtaCoordinator::new(0.3)?.run(&columns)?;
//! // (1,4) and (3,1) are undominated; (4,5) survives with 0.7 × 0.1 × 0.2.
//! assert_eq!(outcome.skyline.len(), 2);
//! assert!(outcome.stats.sorted_accesses > 0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod column;
mod coordinator;
mod error;

pub use column::{AccessStats, ColumnSite};
pub use coordinator::{UtaCoordinator, VerticalOutcome, VerticalStats};
pub use error::Error;
