//! End-to-end CLI tests: generate → query / vertical round trips through
//! the JSONL data format, driven through the library API the binary wraps.

use std::fs;
use std::path::PathBuf;

use dsud_cli::{parse, run, Command};

fn argv(s: &str) -> Vec<String> {
    s.split_whitespace().map(String::from).collect()
}

fn run_to_string(cmd: &Command) -> String {
    let mut buf = Vec::new();
    run(cmd, &mut buf).expect("command succeeds");
    String::from_utf8(buf).expect("output is UTF-8")
}

fn temp_file(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("dsud-cli-it");
    fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn generate_then_query_roundtrip() {
    let path = temp_file("roundtrip.jsonl");
    let gen = parse(&argv(&format!(
        "generate --n 500 --dims 2 --dist anticorrelated --seed 3 --out {}",
        path.display()
    )))
    .unwrap();
    let msg = run_to_string(&gen);
    assert!(msg.contains("wrote 500 tuples"));
    assert_eq!(fs::read_to_string(&path).unwrap().lines().count(), 500);

    let query = parse(&argv(&format!(
        "query --input {} --sites 5 --q 0.3 --algorithm edsud",
        path.display()
    )))
    .unwrap();
    let report = run_to_string(&query);
    assert!(report.contains("qualified tuples"));
    assert!(report.contains("tuples transmitted"));
    assert!(report.contains("P_gsky="));
}

#[test]
fn all_algorithms_agree_on_the_same_file() {
    let path = temp_file("agree.jsonl");
    let gen = parse(&argv(&format!(
        "generate --n 400 --dims 2 --dist independent --seed 4 --out {}",
        path.display()
    )))
    .unwrap();
    run_to_string(&gen);

    let count = |algo: &str| -> usize {
        let cmd = parse(&argv(&format!(
            "query --input {} --sites 4 --q 0.3 --algorithm {algo} --seed 9",
            path.display()
        )))
        .unwrap();
        let report = run_to_string(&cmd);
        report.lines().next().unwrap().split_whitespace().next().unwrap().parse().unwrap()
    };
    let (d, e, b) = (count("dsud"), count("edsud"), count("baseline"));
    assert_eq!(d, e);
    assert_eq!(e, b);
    assert!(d > 0);
}

#[test]
fn vertical_command_matches_horizontal() {
    let path = temp_file("vertical.jsonl");
    run_to_string(
        &parse(&argv(&format!(
            "generate --n 300 --dims 3 --dist independent --seed 5 --out {}",
            path.display()
        )))
        .unwrap(),
    );
    let horizontal = run_to_string(
        &parse(&argv(&format!(
            "query --input {} --sites 3 --q 0.3 --algorithm baseline",
            path.display()
        )))
        .unwrap(),
    );
    let vertical = run_to_string(
        &parse(&argv(&format!("vertical --input {} --q 0.3", path.display()))).unwrap(),
    );
    let first_number = |s: &str| -> usize { s.split_whitespace().next().unwrap().parse().unwrap() };
    assert_eq!(
        first_number(&horizontal),
        first_number(&vertical),
        "horizontal: {horizontal}\nvertical: {vertical}"
    );
    assert!(vertical.contains("accesses:"));
}

#[test]
fn subspace_and_limit_flags_work() {
    let path = temp_file("flags.jsonl");
    run_to_string(
        &parse(&argv(&format!(
            "generate --n 600 --dims 3 --dist anticorrelated --seed 6 --out {}",
            path.display()
        )))
        .unwrap(),
    );
    let limited = run_to_string(
        &parse(&argv(&format!("query --input {} --sites 4 --q 0.3 --limit 2", path.display())))
            .unwrap(),
    );
    assert!(limited.starts_with("2 qualified"));

    let sub = run_to_string(
        &parse(&argv(&format!(
            "query --input {} --sites 4 --q 0.3 --subspace 0,1",
            path.display()
        )))
        .unwrap(),
    );
    assert!(sub.contains("qualified tuples"));
}

#[test]
fn nyse_generation_and_gaussian_probabilities() {
    let path = temp_file("nyse.jsonl");
    let gen = parse(&argv(&format!(
        "generate --n 200 --dist nyse --gaussian 0.5 --seed 7 --out {}",
        path.display()
    )))
    .unwrap();
    run_to_string(&gen);
    let report = run_to_string(
        &parse(&argv(&format!("query --input {} --sites 4", path.display()))).unwrap(),
    );
    assert!(report.contains("qualified tuples"));
}

#[test]
fn help_prints_usage() {
    let help = run_to_string(&Command::Help);
    assert!(help.contains("USAGE"));
    assert!(help.contains("generate"));
}

#[test]
fn query_on_missing_file_fails_cleanly() {
    let cmd = parse(&argv("query --input /nonexistent/nope.jsonl")).unwrap();
    let mut buf = Vec::new();
    assert!(run(&cmd, &mut buf).is_err());
}

#[test]
fn stream_command_reports_checkpoints() {
    let path = temp_file("stream.jsonl");
    run_to_string(
        &parse(&argv(&format!(
            "generate --n 600 --dims 2 --dist independent --seed 8 --out {}",
            path.display()
        )))
        .unwrap(),
    );
    let report = run_to_string(
        &parse(&argv(&format!(
            "stream --input {} --q 0.3 --window 100 --every 200",
            path.display()
        )))
        .unwrap(),
    );
    assert!(report.contains("after"));
    assert!(report.contains("final:"));
    assert!(report.contains("expirations"));
}
