use std::fs;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;

use dsud_core::update::UpdateOp;
use dsud_core::{
    baseline, BandwidthMeter, BatchSize, Cluster, FailurePolicy, LinkConfig, PipelineDepth,
    PlanMode, PlanSummary, QueryConfig, QueryOutcome, Recorder, RunReport, SessionOptions,
    SessionServer, SiteOptions, SubspaceMask, Topology, Transport, WireFormat,
};
use dsud_data::nyse::NyseSpec;
use dsud_data::{partition_uniform, ProbabilityLaw, SpatialDistribution, WorkloadSpec};
use dsud_net::{spawn_query_server, ClientControl, ClientHandler};
use dsud_uncertain::{Probability, UncertainTuple};
use dsud_vertical::{ColumnSite, UtaCoordinator};

use crate::args::USAGE;
use crate::protocol::{
    DoneSummary, QuerySpec, Request, Response, ResultEntry, UpdateSpec, UpdateSummary,
};
use crate::{Algorithm, CliError, Command, Distribution};

/// Executes a parsed command, writing human-readable output to `out`.
///
/// # Errors
///
/// Returns a [`CliError`] describing i/o, parse, or library failures.
pub fn run<W: Write>(cmd: &Command, out: &mut W) -> Result<(), CliError> {
    match cmd {
        Command::Help => {
            writeln!(out, "{USAGE}")?;
            Ok(())
        }
        Command::Generate { n, dims, dist, gaussian_mean, seed, out: path } => {
            generate(*n, *dims, *dist, *gaussian_mean, *seed, path.as_deref(), out)
        }
        Command::Query {
            input,
            sites,
            q,
            algorithm,
            subspace,
            limit,
            seed,
            report,
            transport,
            failure,
            batch,
            pipeline,
            wire,
            topology,
            plan,
        } => query(
            input,
            *sites,
            *q,
            *algorithm,
            subspace.as_deref(),
            *limit,
            *seed,
            report.as_deref(),
            *transport,
            *failure,
            *batch,
            *pipeline,
            *wire,
            *topology,
            *plan,
            out,
        ),
        Command::Vertical { input, q } => vertical(input, *q, out),
        Command::Stream { input, q, window, every } => stream(input, *q, *window, *every, out),
        Command::Serve {
            input,
            sites,
            seed,
            port,
            transport,
            failure,
            batch,
            pipeline,
            wire,
            max_concurrent,
            cache,
            heartbeat,
            op_log,
            topology,
            plan,
        } => serve(
            input,
            *sites,
            *seed,
            *port,
            *transport,
            *failure,
            *batch,
            *pipeline,
            *wire,
            *max_concurrent,
            *cache,
            *heartbeat,
            *op_log,
            *topology,
            *plan,
            out,
        ),
        Command::Client {
            addr,
            algorithm,
            q,
            subspace,
            limit,
            report,
            deadline,
            insert,
            delete,
            shutdown,
        } => client(
            addr,
            *algorithm,
            *q,
            subspace.as_deref(),
            *limit,
            report.as_deref(),
            *deadline,
            insert.as_deref(),
            delete.as_deref(),
            *shutdown,
            out,
        ),
        Command::Estimate { n, dims, sites } => {
            estimate(*n, *dims, *sites, out)?;
            Ok(())
        }
    }
}

fn probability_law(gaussian_mean: Option<f64>) -> ProbabilityLaw {
    match gaussian_mean {
        Some(mean) => ProbabilityLaw::Gaussian { mean, std_dev: 0.2 },
        None => ProbabilityLaw::Uniform,
    }
}

fn generate<W: Write>(
    n: usize,
    dims: usize,
    dist: Distribution,
    gaussian_mean: Option<f64>,
    seed: u64,
    path: Option<&std::path::Path>,
    out: &mut W,
) -> Result<(), CliError> {
    let prob = probability_law(gaussian_mean);
    let tuples: Vec<UncertainTuple> = match dist {
        Distribution::Nyse => {
            let rows = NyseSpec::new(n).probability_law(prob).seed(seed).generate_rows()?;
            rows.into_iter()
                .enumerate()
                .map(|(i, (values, p))| {
                    UncertainTuple::new(dsud_uncertain::TupleId::new(0, i as u64), values, p)
                        .expect("generated rows are valid")
                })
                .collect()
        }
        other => {
            let spatial = match other {
                Distribution::Independent => SpatialDistribution::Independent,
                Distribution::Correlated => SpatialDistribution::Correlated,
                Distribution::Anticorrelated => SpatialDistribution::Anticorrelated,
                Distribution::Nyse => unreachable!("handled above"),
            };
            WorkloadSpec::new(n, dims)
                .spatial(spatial)
                .probability_law(prob)
                .seed(seed)
                .generate()?
        }
    };

    let mut buffer = String::with_capacity(tuples.len() * 64);
    for t in &tuples {
        buffer.push_str(&serde_json::to_string(t).expect("tuples serialize"));
        buffer.push('\n');
    }
    match path {
        Some(path) => {
            fs::write(path, buffer)?;
            writeln!(out, "wrote {} tuples to {}", tuples.len(), path.display())?;
        }
        None => out.write_all(buffer.as_bytes())?,
    }
    Ok(())
}

/// Reads a JSONL workload file.
fn read_tuples(path: &std::path::Path) -> Result<Vec<UncertainTuple>, CliError> {
    let text = fs::read_to_string(path)?;
    let mut tuples = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let t: UncertainTuple = serde_json::from_str(line)
            .map_err(|e| CliError::Parse { line: i + 1, message: e.to_string() })?;
        tuples.push(t);
    }
    if tuples.is_empty() {
        return Err(CliError::Parse { line: 0, message: "file holds no tuples".into() });
    }
    Ok(tuples)
}

#[allow(clippy::too_many_arguments)]
fn query<W: Write>(
    input: &std::path::Path,
    sites: usize,
    q: f64,
    algorithm: Algorithm,
    subspace: Option<&[usize]>,
    limit: Option<usize>,
    seed: u64,
    report: Option<&std::path::Path>,
    transport: Transport,
    failure: FailurePolicy,
    batch: BatchSize,
    pipeline: PipelineDepth,
    wire: WireFormat,
    topology: Topology,
    plan: PlanMode,
    out: &mut W,
) -> Result<(), CliError> {
    let tuples = read_tuples(input)?;
    let dims = tuples[0].dims();
    let rows: Vec<(Vec<f64>, Probability)> =
        tuples.iter().map(|t| (t.values().to_vec(), t.prob())).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    let partitioned = partition_uniform(rows, sites, &mut rng)?;

    let mut config = QueryConfig::new(q)?
        .failure_policy(failure)
        .batch_size(batch)
        .pipeline_depth(pipeline)
        .wire_format(wire)
        .plan_mode(plan);
    if let Some(dims_spec) = subspace {
        config = config.subspace(SubspaceMask::from_dims(dims_spec)?);
    }
    if let Some(k) = limit {
        config = config.limit(k);
    }

    // Observability is pay-for-what-you-ask: without --report the recorder
    // is the disabled no-op.
    let recorder = if report.is_some() { Recorder::enabled() } else { Recorder::disabled() };
    let algo_name = match algorithm {
        Algorithm::Baseline => "baseline",
        Algorithm::Dsud => "dsud",
        Algorithm::Edsud => "edsud",
    };

    // The centralized baseline has no sites to transport between: it
    // always runs in process, whatever --transport says — and with no
    // rounds to plan, no plan phase either.
    let used_transport = match algorithm {
        Algorithm::Baseline => Transport::Inline,
        _ => transport,
    };
    let used_plan = match algorithm {
        Algorithm::Baseline => PlanMode::Static,
        _ => plan,
    };
    // `(depth, root links)` of the assembled fan-out plan, stamped into
    // the report; the centralized baseline has no plan at all.
    let mut fan_shape: Option<(u32, usize)> = None;
    let outcome: QueryOutcome = match algorithm {
        Algorithm::Baseline => {
            let meter = BandwidthMeter::with_recorder(recorder.clone());
            let mask = config.resolve_mask(dims)?;
            baseline::run(&partitioned, dims, q, mask, &meter)?
        }
        Algorithm::Dsud | Algorithm::Edsud => {
            let mut cluster = Cluster::with_topology(
                dims,
                partitioned,
                SiteOptions { wire, ..SiteOptions::default() },
                recorder.clone(),
                used_transport,
                LinkConfig::default(),
                topology,
                None,
            )?;
            fan_shape = Some((cluster.plan().depth(), cluster.plan().root_fanout()));
            match algorithm {
                Algorithm::Dsud => cluster.run_dsud(&config)?,
                _ => cluster.run_edsud(&config)?,
            }
        }
    };

    if let Some(path) = report {
        let mut run_report = recorder.report(algo_name).expect("recorder is enabled");
        run_report.transport = Some(used_transport.to_string());
        run_report.threads = Some(threadpool::pool_size());
        run_report.batch_size = Some(batch.name());
        run_report.pipeline = Some(pipeline.name());
        run_report.wire = Some(wire.as_str().to_string());
        if let Some((depth, root_fanout)) = fan_shape {
            run_report.topology = Some(topology.to_string());
            run_report.agg_depth = Some(depth);
            run_report.root_fanout = Some(root_fanout);
        }
        stamp_plan(&mut run_report, used_plan, outcome.plan.as_ref());
        let json = serde_json::to_string_pretty(&run_report)
            .map_err(|e| CliError::Library(format!("cannot serialize run report: {e}")))?;
        fs::write(path, json)?;
        writeln!(out, "run report written to {}", path.display())?;
    }

    writeln!(
        out,
        "{} qualified tuples (q = {q}, {} sites, {} tuples transmitted)",
        outcome.skyline.len(),
        sites,
        outcome.tuples_transmitted()
    )?;
    // On a degraded run every probability is only an upper bound — stamp
    // each entry, not just the trailing warning line.
    let relation = if outcome.degraded { "<=" } else { "=" };
    for entry in &outcome.skyline {
        writeln!(
            out,
            "  {}  values={:?}  P_gsky{relation}{:.4}",
            entry.tuple.id(),
            entry.tuple.values(),
            entry.probability
        )?;
    }
    let t = &outcome.traffic;
    writeln!(
        out,
        "traffic: uploads={} feedback={} maintenance={} bytes={}",
        t.upload.tuples,
        t.feedback.tuples,
        t.maintenance.tuples,
        t.total().bytes
    )?;
    let retries = recorder.counter(dsud_core::Counter::LinkRetries);
    let timeouts = recorder.counter(dsud_core::Counter::LinkTimeouts);
    if retries > 0 || timeouts > 0 {
        writeln!(out, "faults: retries={retries} timeouts={timeouts}")?;
    }
    if outcome.degraded {
        let lost: Vec<String> = outcome
            .sites
            .iter()
            .filter(|s| !s.healthy())
            .map(|s| {
                let reason = s.quarantined.as_ref().expect("unhealthy sites carry a reason");
                format!("site {} ({reason})", s.site)
            })
            .collect();
        writeln!(
            out,
            "DEGRADED: quarantined {} — reported probabilities are upper bounds",
            lost.join(", ")
        )?;
    }
    Ok(())
}

/// Stamps a run report's plan-phase fields: the mode that ran, and — when
/// a sketch gather actually happened — its cost (`sketch_bytes`,
/// `plan_us`) and decision (`planned_batch`, absent when the gather
/// degraded back to the static schedule).
fn stamp_plan(report: &mut RunReport, plan: PlanMode, summary: Option<&PlanSummary>) {
    report.plan = Some(plan.to_string());
    if let Some(s) = summary {
        report.sketch_bytes = Some(s.sketch_bytes);
        report.plan_us = Some(s.plan_us);
        report.planned_batch = s.planned_batch;
    }
}

fn vertical<W: Write>(input: &std::path::Path, q: f64, out: &mut W) -> Result<(), CliError> {
    let tuples = read_tuples(input)?;
    let columns = ColumnSite::partition(&tuples)?;
    let outcome = UtaCoordinator::new(q)?.run(&columns)?;
    writeln!(
        out,
        "{} qualified tuples (q = {q}, {} column sites)",
        outcome.skyline.len(),
        columns.len()
    )?;
    for entry in &outcome.skyline {
        writeln!(
            out,
            "  {}  values={:?}  P_sky={:.4}",
            entry.tuple.id(),
            entry.tuple.values(),
            entry.probability
        )?;
    }
    writeln!(
        out,
        "accesses: sorted={} random={} resolved={} of {}",
        outcome.stats.sorted_accesses,
        outcome.stats.random_accesses,
        outcome.stats.resolved,
        tuples.len()
    )?;
    Ok(())
}

fn stream<W: Write>(
    input: &std::path::Path,
    q: f64,
    window: usize,
    every: usize,
    out: &mut W,
) -> Result<(), CliError> {
    let tuples = read_tuples(input)?;
    let dims = tuples[0].dims();
    let mut sky = dsud_stream::SlidingSkyline::new(dims, window, q)
        .map_err(|e| CliError::Library(e.to_string()))?;
    for (i, t) in tuples.iter().enumerate() {
        sky.push(t.clone()).map_err(|e| CliError::Library(e.to_string()))?;
        if (i + 1) % every.max(1) == 0 {
            writeln!(
                out,
                "after {:>8} arrivals: {:>4} qualified, candidates {:>5} of window {}",
                i + 1,
                sky.skyline().len(),
                sky.candidate_count(),
                sky.len()
            )?;
        }
    }
    let stats = sky.stats();
    writeln!(
        out,
        "final: {} qualified; {} arrivals, {} expirations, {} candidates pruned early",
        sky.skyline().len(),
        stats.arrivals,
        stats.expirations,
        stats.pruned_candidates
    )?;
    Ok(())
}

/// Per-connection request handler for `dsud serve`: bridges the JSON-lines
/// protocol (`crate::protocol`) to the shared [`SessionServer`]. Execution
/// knobs (transport, failure, batch, pipeline, wire) are the daemon's
/// flags — every query runs with them, whoever asks.
struct ServeHandler {
    session: Arc<SessionServer>,
    transport: Transport,
    failure: FailurePolicy,
    batch: BatchSize,
    pipeline: PipelineDepth,
    wire: WireFormat,
    topology: Topology,
    plan: PlanMode,
}

impl ServeHandler {
    fn answer_query(&self, spec: &QuerySpec) -> Result<dsud_core::SessionOutcome, CliError> {
        let mut config = QueryConfig::new(spec.q.unwrap_or(0.3))?
            .failure_policy(self.failure)
            .batch_size(self.batch)
            .pipeline_depth(self.pipeline)
            .wire_format(self.wire)
            .plan_mode(self.plan);
        if let Some(dims) = &spec.subspace {
            config = config.subspace(SubspaceMask::from_dims(dims)?);
        }
        if let Some(k) = spec.limit {
            config = config.limit(k);
        }
        if let Some(ms) = spec.deadline_ms {
            config = config.deadline(ms);
        }
        let mut outcome = match spec.algorithm.as_deref().unwrap_or("edsud") {
            "dsud" => self.session.run_dsud(&config, spec.report)?,
            "edsud" => self.session.run_edsud(&config, spec.report)?,
            other => {
                return Err(CliError::Usage(format!(
                    "unknown algorithm '{other}' (the daemon serves dsud|edsud)"
                )))
            }
        };
        // Stamp the environment fields exactly like the one-shot path.
        if let Some(report) = outcome.report.as_mut() {
            report.transport = Some(self.transport.to_string());
            report.threads = Some(threadpool::pool_size());
            report.batch_size = Some(self.batch.name());
            report.pipeline = Some(self.pipeline.name());
            report.wire = Some(self.wire.as_str().to_string());
            report.topology = Some(self.topology.to_string());
            report.agg_depth = Some(self.session.plan().depth());
            report.root_fanout = Some(self.session.plan().root_fanout());
            stamp_plan(report, self.plan, outcome.outcome.plan.as_ref());
        }
        Ok(outcome)
    }

    fn apply_update(&self, spec: &UpdateSpec) -> Result<UpdateSummary, CliError> {
        let op = match spec.op.as_str() {
            "insert" => UpdateOp::Insert(spec.tuple.clone()),
            "delete" => UpdateOp::Delete(spec.tuple.clone()),
            other => {
                return Err(CliError::Usage(format!("unknown update op '{other}' (insert|delete)")))
            }
        };
        let invalidated_before = self.session.stats().cache_invalidated;
        self.session.apply_update(&op)?;
        let stats = self.session.stats();
        Ok(UpdateSummary {
            updates_applied: stats.updates_applied,
            cache_invalidated: stats.cache_invalidated - invalidated_before,
        })
    }
}

/// Writes one protocol line and flushes it so clients see it immediately.
fn respond(out: &mut dyn Write, response: &Response) -> std::io::Result<()> {
    let line = serde_json::to_string(response).expect("protocol responses serialize");
    writeln!(out, "{line}")?;
    out.flush()
}

fn respond_error(out: &mut dyn Write, message: &str) -> std::io::Result<ClientControl> {
    respond(out, &Response { error: Some(message.to_string()), ..Response::default() })?;
    Ok(ClientControl::Continue)
}

impl ClientHandler for ServeHandler {
    fn handle_line(&mut self, line: &str, out: &mut dyn Write) -> std::io::Result<ClientControl> {
        let request: Request = match serde_json::from_str(line) {
            Ok(request) => request,
            Err(e) => return respond_error(out, &format!("bad request: {e}")),
        };
        if request.shutdown {
            respond(out, &Response { bye: true, ..Response::default() })?;
            return Ok(ClientControl::Shutdown);
        }
        if let Some(spec) = &request.update {
            return match self.apply_update(spec) {
                Ok(summary) => {
                    respond(out, &Response { updated: Some(summary), ..Response::default() })?;
                    Ok(ClientControl::Continue)
                }
                Err(e) => respond_error(out, &e.to_string()),
            };
        }
        if let Some(spec) = &request.query {
            return match self.answer_query(spec) {
                Ok(answer) => {
                    // One line per qualified tuple, flushed as written, so
                    // the client renders results progressively in the
                    // algorithms' discovery order.
                    // Degraded answers carry only upper bounds: every entry
                    // is stamped so a client parsing the stream can tell
                    // exact probabilities from bounds per tuple, not just
                    // from the trailing summary.
                    let bound = answer.outcome.degraded.then(|| "upper".to_string());
                    for entry in &answer.outcome.skyline {
                        let result = ResultEntry {
                            site: entry.tuple.id().site.0,
                            seq: entry.tuple.id().seq,
                            values: entry.tuple.values().to_vec(),
                            probability: entry.probability,
                            bound: bound.clone(),
                        };
                        respond(out, &Response { result: Some(result), ..Response::default() })?;
                    }
                    let done = DoneSummary {
                        query_id: answer.query_id,
                        count: answer.outcome.skyline.len(),
                        cache_hit: answer.cache_hit,
                        admission_wait_us: answer.admission_wait_us,
                        tuples_transmitted: answer.outcome.traffic.tuples_transmitted(),
                        iterations: answer.outcome.stats.iterations,
                        degraded: answer.outcome.degraded,
                        cancelled: answer.outcome.cancelled,
                        report: answer.report,
                    };
                    respond(out, &Response { done: Some(done), ..Response::default() })?;
                    Ok(ClientControl::Continue)
                }
                Err(e) => respond_error(out, &e.to_string()),
            };
        }
        respond_error(out, "empty request: set query, update, or shutdown")
    }
}

#[allow(clippy::too_many_arguments)]
fn serve<W: Write>(
    input: &std::path::Path,
    sites: usize,
    seed: u64,
    port: u16,
    transport: Transport,
    failure: FailurePolicy,
    batch: BatchSize,
    pipeline: PipelineDepth,
    wire: WireFormat,
    max_concurrent: usize,
    cache: usize,
    heartbeat: u64,
    op_log: usize,
    topology: Topology,
    plan: PlanMode,
    out: &mut W,
) -> Result<(), CliError> {
    let tuples = read_tuples(input)?;
    let dims = tuples[0].dims();
    let rows: Vec<(Vec<f64>, Probability)> =
        tuples.iter().map(|t| (t.values().to_vec(), t.prob())).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    let partitioned = partition_uniform(rows, sites, &mut rng)?;

    let cluster = Cluster::with_topology(
        dims,
        partitioned,
        SiteOptions { wire, ..SiteOptions::default() },
        Recorder::disabled(),
        transport,
        LinkConfig::default(),
        topology,
        None,
    )?;
    let session = Arc::new(SessionServer::new(
        cluster,
        SessionOptions {
            max_concurrent,
            cache_capacity: cache,
            heartbeat_every: heartbeat,
            op_log_capacity: op_log,
            ..SessionOptions::default()
        },
    ));
    let handler_session = Arc::clone(&session);
    let server = spawn_query_server(port, move || ServeHandler {
        session: Arc::clone(&handler_session),
        transport,
        failure,
        batch,
        pipeline,
        wire,
        topology,
        plan,
    })?;
    writeln!(
        out,
        "dsud serve listening on {} ({} sites, {} tuples, transport {transport}, \
         topology {topology} ({} root links), max-concurrent {max_concurrent}, cache {cache}, \
         heartbeat {heartbeat}, op-log {op_log})",
        server.addr(),
        session.site_count(),
        session.total_tuples(),
        session.plan().root_fanout(),
    )?;
    out.flush()?;
    server.wait()?;
    let stats = session.stats();
    writeln!(
        out,
        "dsud serve stopped: {} queries ({} cache hits, {} cancelled), {} updates, \
         peak concurrency {}, health: {} quarantines / {} rejoins / {} resync ops / {} misses",
        stats.queries_served,
        stats.cache_hits,
        stats.cancelled,
        stats.updates_applied,
        stats.peak_concurrent,
        stats.quarantines,
        stats.rejoins,
        stats.resync_ops,
        stats.heartbeat_misses,
    )?;
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn client<W: Write>(
    addr: &str,
    algorithm: Algorithm,
    q: f64,
    subspace: Option<&[usize]>,
    limit: Option<usize>,
    report: Option<&std::path::Path>,
    deadline: Option<u64>,
    insert: Option<&str>,
    delete: Option<&str>,
    shutdown: bool,
    out: &mut W,
) -> Result<(), CliError> {
    let request = if shutdown {
        Request { shutdown: true, ..Request::default() }
    } else if let Some(json) = insert.or(delete) {
        let tuple: UncertainTuple = serde_json::from_str(json)
            .map_err(|e| CliError::Parse { line: 1, message: e.to_string() })?;
        let op = if insert.is_some() { "insert" } else { "delete" };
        Request { update: Some(UpdateSpec { op: op.to_string(), tuple }), ..Request::default() }
    } else {
        let algorithm = match algorithm {
            Algorithm::Dsud => "dsud",
            Algorithm::Edsud => "edsud",
            Algorithm::Baseline => {
                return Err(CliError::Usage(
                    "the daemon serves dsud|edsud; run baseline locally via 'dsud query'".into(),
                ))
            }
        };
        Request {
            query: Some(QuerySpec {
                algorithm: Some(algorithm.to_string()),
                q: Some(q),
                subspace: subspace.map(<[usize]>::to_vec),
                limit,
                report: report.is_some(),
                deadline_ms: deadline,
            }),
            ..Request::default()
        }
    };

    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    let mut writer = BufWriter::new(stream.try_clone()?);
    let reader = BufReader::new(stream);
    let line = serde_json::to_string(&request).expect("protocol requests serialize");
    writeln!(writer, "{line}")?;
    writer.flush()?;

    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let response: Response = serde_json::from_str(&line)
            .map_err(|e| CliError::Library(format!("bad response from server: {e}")))?;
        if let Some(message) = response.error {
            return Err(CliError::Library(format!("server error: {message}")));
        }
        if response.bye {
            writeln!(out, "server shutting down")?;
            return Ok(());
        }
        if let Some(update) = response.updated {
            writeln!(
                out,
                "update applied ({} total), {} cached answers invalidated",
                update.updates_applied, update.cache_invalidated
            )?;
            return Ok(());
        }
        if let Some(entry) = response.result {
            // Degraded entries carry bound="upper": render the relation
            // honestly (≤, not =) so the marker survives into human output.
            let relation = if entry.bound.as_deref() == Some("upper") { "<=" } else { "=" };
            writeln!(
                out,
                "  {}  values={:?}  P_gsky{relation}{:.4}",
                dsud_uncertain::TupleId::new(entry.site, entry.seq),
                entry.values,
                entry.probability
            )?;
            continue;
        }
        if let Some(done) = response.done {
            writeln!(
                out,
                "query {}: {} qualified tuples ({}, {} tuples transmitted, \
                 {} iterations, waited {}us at admission)",
                done.query_id,
                done.count,
                if done.cache_hit { "cache hit" } else { "computed" },
                done.tuples_transmitted,
                done.iterations,
                done.admission_wait_us
            )?;
            if done.degraded {
                writeln!(out, "DEGRADED: reported probabilities are upper bounds")?;
            }
            if done.cancelled {
                writeln!(
                    out,
                    "CANCELLED: deadline hit — results above are the partial \
                     progressive answer"
                )?;
            }
            if let Some(path) = report {
                match &done.report {
                    Some(run_report) => {
                        let json = serde_json::to_string_pretty(run_report).map_err(|e| {
                            CliError::Library(format!("cannot serialize run report: {e}"))
                        })?;
                        fs::write(path, json)?;
                        writeln!(out, "run report written to {}", path.display())?;
                    }
                    None => writeln!(out, "server returned no run report")?,
                }
            }
            return Ok(());
        }
    }
    Err(CliError::Library("connection closed before the reply completed".into()))
}

fn estimate<W: Write>(n: usize, dims: usize, sites: usize, out: &mut W) -> Result<(), CliError> {
    let a = dsud_core::estimate::analyze(sites, dims, n);
    writeln!(out, "expected skyline cardinality H({dims}, {n}) ≈ {:.1}", a.expected_skylines)?;
    writeln!(out, "naive feedback cost  N_back  ≈ {:.0} tuples (Eq. 7)", a.n_back)?;
    writeln!(out, "local skyline volume N_local ≈ {:.0} tuples (Eq. 8)", a.n_local)?;
    writeln!(
        out,
        "N_back / N_local ≈ {:.2} — blind feedback costs more than shipping local skylines",
        a.n_back / a.n_local.max(f64::MIN_POSITIVE)
    )?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimate_prints_analysis() {
        let mut buf = Vec::new();
        estimate(2_000_000, 3, 60, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("N_back"));
        assert!(text.contains("N_local"));
    }

    #[test]
    fn query_with_report_writes_a_parseable_run_report() {
        let dir = std::env::temp_dir().join("dsud-cli-report-test");
        fs::create_dir_all(&dir).unwrap();
        let data = dir.join("workload.jsonl");
        let mut buf = Vec::new();
        generate(300, 2, Distribution::Independent, None, 7, Some(&data), &mut buf).unwrap();
        for algorithm in [Algorithm::Dsud, Algorithm::Edsud] {
            let path = dir.join("report.json");
            let mut out = Vec::new();
            query(
                &data,
                4,
                0.3,
                algorithm,
                None,
                None,
                0,
                Some(&path),
                Transport::Inline,
                FailurePolicy::Strict,
                BatchSize::Fixed(4),
                PipelineDepth::Auto,
                WireFormat::Columnar,
                Topology::Tree(2),
                PlanMode::Sketch,
                &mut out,
            )
            .unwrap();
            let text = String::from_utf8(out).unwrap();
            assert!(text.contains("run report written to"));
            let report: dsud_core::RunReport =
                serde_json::from_str(&fs::read_to_string(&path).unwrap()).unwrap();
            assert_eq!(report.schema_version, dsud_core::SCHEMA_VERSION);
            assert!(report.counters.bytes_sent > 0);
            assert!(report.counters.rounds >= 1);
            assert_eq!(report.transport.as_deref(), Some("inline"));
            assert_eq!(report.threads, Some(threadpool::pool_size()));
            assert_eq!(report.batch_size.as_deref(), Some("4"));
            assert_eq!(report.pipeline.as_deref(), Some("auto"));
            assert_eq!(report.counters.pipeline_depth, 2, "auto resolves to the double buffer");
            assert!(report.counters.overlapped_rounds > 0);
            assert_eq!(report.topology.as_deref(), Some("tree:2"));
            assert_eq!(report.agg_depth, Some(1), "4 sites at fan-out 2 need one layer");
            assert_eq!(report.root_fanout, Some(2));
            assert!(
                report.counters.agg_merged_frames > 0,
                "a tree run merges at least the start broadcast"
            );
            assert_eq!(report.plan.as_deref(), Some("sketch"));
            assert!(report.sketch_bytes.unwrap() > 0, "sketch frames were received and charged");
            assert!(report.plan_us.is_some());
            assert!(
                report.planned_batch.unwrap() >= dsud_core::planner::PLAN_BATCH_MIN,
                "the planner never caps below the static auto clamp"
            );
            assert_eq!(
                report.counters.sketch_merges, 1,
                "a 2-link tree root folds one sketch beyond the first"
            );
            assert!(!report.phases.is_empty(), "per-phase totals are aggregated");
            fs::remove_file(&path).unwrap();
        }
    }

    #[test]
    fn read_tuples_rejects_garbage() {
        let dir = std::env::temp_dir().join("dsud-cli-test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("garbage.jsonl");
        fs::write(&path, "not json\n").unwrap();
        assert!(matches!(read_tuples(&path), Err(CliError::Parse { line: 1, .. })));
        fs::write(&path, "").unwrap();
        assert!(matches!(read_tuples(&path), Err(CliError::Parse { line: 0, .. })));
    }
}
