use std::collections::HashMap;
use std::path::PathBuf;

use dsud_core::{
    BatchSize, FailurePolicy, PipelineDepth, PlanMode, Topology, Transport, WireFormat,
};

use crate::CliError;

/// Which query algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algorithm {
    /// The DSUD baseline (Section 5.1).
    Dsud,
    /// The enhanced e-DSUD (Section 5.2, default).
    Edsud,
    /// Ship-everything centralized baseline.
    Baseline,
}

/// Spatial distribution for `generate`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Distribution {
    /// Independent uniform values.
    Independent,
    /// Correlated values.
    Correlated,
    /// Anticorrelated values.
    Anticorrelated,
    /// Synthetic NYSE stock trades (2-d).
    Nyse,
}

/// A parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Generate a workload file.
    Generate {
        /// Number of tuples.
        n: usize,
        /// Dimensionality (ignored for `nyse`).
        dims: usize,
        /// Spatial distribution.
        dist: Distribution,
        /// Gaussian probability mean, if requested (`--gaussian <mu>`);
        /// uniform otherwise.
        gaussian_mean: Option<f64>,
        /// RNG seed.
        seed: u64,
        /// Output path (`-` for stdout).
        out: Option<PathBuf>,
    },
    /// Run a distributed (horizontal) skyline query over a workload file.
    Query {
        /// Input path.
        input: PathBuf,
        /// Number of sites to partition across.
        sites: usize,
        /// Probability threshold.
        q: f64,
        /// Algorithm choice.
        algorithm: Algorithm,
        /// Optional subspace: dimension indices.
        subspace: Option<Vec<usize>>,
        /// Optional progressive top-k limit.
        limit: Option<usize>,
        /// Partitioning seed.
        seed: u64,
        /// Optional path for a JSON observability run report.
        report: Option<PathBuf>,
        /// Site transport: `inline` (deterministic in-process dispatch,
        /// the default), `threaded` (one OS thread per site behind
        /// channels), or `tcp` (real loopback sockets). The answer is
        /// bit-identical across all three; only `--failure degrade`
        /// behavior and wall-clock change. `baseline` always runs in
        /// process and ignores this flag.
        transport: Transport,
        /// What to do when a site stays unreachable after its link's
        /// retries are exhausted: `strict` (default) aborts the query
        /// naming the dead site; `degrade` quarantines it and finishes on
        /// the survivors, reporting probabilities as upper bounds and
        /// marking the run `DEGRADED`. Only meaningful on fallible
        /// transports — `inline` links cannot fail.
        failure: FailurePolicy,
        /// Candidates coalesced per feedback round: `--batch <K>` fixes
        /// the count, `--batch auto` sizes each round from the candidate
        /// backlog. Batching trades per-round latency for fewer
        /// synchronization rounds and never changes the answer (pinned by
        /// bit-identity tests). Composes with `--pipeline`: batches fill
        /// the in-flight window.
        batch: BatchSize,
        /// In-flight request window per link: `--pipeline <W>` fixes the
        /// window, `--pipeline auto` resolves to the double buffer (W=2).
        /// W > 1 overlaps each round's scatter with the next round's
        /// refills — useful on `threaded`/`tcp` where requests have real
        /// latency, a no-op win on `inline` — without changing the answer.
        pipeline: PipelineDepth,
        /// Wire layout for bulk-data frames: `columnar` (default) ships
        /// batched feedback / replica traffic as fixed-width column
        /// sections the sites answer without decoding; `legacy` keeps the
        /// row-oriented encoding. Answers, progress order, and tuple
        /// counts are bit-identical; only bytes and decode time differ.
        wire: WireFormat,
        /// Coordinator fan-out: `flat` (default) gives the root one link
        /// per site; `tree:<F>` interposes regional aggregators of fan-out
        /// F >= 2 that merge child frames before forwarding; `auto` picks
        /// F = ceil(sqrt(m)). Answers are bit-identical at every setting;
        /// only root-link frame and byte counts change.
        topology: Topology,
        /// Round planning: `sketch` (default) gathers one mergeable sketch
        /// per site before the first round and sizes `--batch auto` rounds
        /// from the observed distribution; `static` keeps the fixed queue
        /// clamp. Bit-identical answers either way; only round shape (and
        /// hence frame counts) changes.
        plan: PlanMode,
    },
    /// Run the long-lived session daemon: sites stay resident and many
    /// concurrent clients multiplex queries onto them.
    Serve {
        /// Input path.
        input: PathBuf,
        /// Number of sites to partition across.
        sites: usize,
        /// Partitioning seed.
        seed: u64,
        /// TCP port to listen on (0 picks an ephemeral port; the bound
        /// address is printed on startup).
        port: u16,
        /// Site transport (same choices and semantics as `query`).
        transport: Transport,
        /// Failure policy applied to every query (same semantics as
        /// `query`; chosen by the operator, not per client).
        failure: FailurePolicy,
        /// Feedback batching applied to every query (`<K>` or `auto`).
        batch: BatchSize,
        /// Pipeline window applied to every query (`<W>` or `auto`).
        pipeline: PipelineDepth,
        /// Wire layout applied to every query (same semantics as `query`).
        wire: WireFormat,
        /// Admission-control gate: maximum queries running concurrently;
        /// arrivals beyond that queue FIFO.
        max_concurrent: usize,
        /// Result-cache capacity in answers (0 disables caching).
        cache: usize,
        /// Heartbeat cadence in served queries: after every N queries the
        /// daemon probes all sites, quarantining the unresponsive and
        /// walking recovered ones through probation back to Active
        /// (0 disables the health sweep — a failed site then stays
        /// quarantined until restart).
        heartbeat: u64,
        /// Bounded update op-log capacity for rejoin resync: a recovering
        /// site replays the ops it missed from this log; if the outage
        /// outlasts the log, the site takes a full bootstrap instead and
        /// any evicted deferred ops are lost.
        op_log: usize,
        /// Coordinator fan-out applied to every query (same semantics as
        /// `query`; chosen by the operator, not per client). Heartbeats
        /// probe one link per aggregator subtree, and a lost aggregator
        /// quarantines its whole subtree as a unit.
        topology: Topology,
        /// Round planning applied to every query (same semantics as
        /// `query`; chosen by the operator, not per client).
        plan: PlanMode,
    },
    /// Send one request to a running `dsud serve` daemon.
    Client {
        /// Daemon address, e.g. `127.0.0.1:7878`.
        addr: String,
        /// Algorithm choice (`baseline` is not served).
        algorithm: Algorithm,
        /// Probability threshold.
        q: f64,
        /// Optional subspace: dimension indices.
        subspace: Option<Vec<usize>>,
        /// Optional progressive top-k limit.
        limit: Option<usize>,
        /// Optional path for the per-query JSON run report.
        report: Option<PathBuf>,
        /// Optional per-query deadline in milliseconds: the server cancels
        /// the query at the next round boundary, streams the partial
        /// progressive answer, and stamps the summary `cancelled`.
        deadline: Option<u64>,
        /// JSON tuple to insert (`--insert '<tuple json>'`), instead of
        /// querying.
        insert: Option<String>,
        /// JSON tuple to delete, instead of querying.
        delete: Option<String>,
        /// Ask the daemon to shut down, instead of querying.
        shutdown: bool,
    },
    /// Run the vertically partitioned UTA query over a workload file.
    Vertical {
        /// Input path.
        input: PathBuf,
        /// Probability threshold.
        q: f64,
    },
    /// Stream a workload file through a sliding window, printing
    /// checkpoints of the continuous skyline.
    Stream {
        /// Input path.
        input: PathBuf,
        /// Probability threshold.
        q: f64,
        /// Window size (count-based).
        window: usize,
        /// Report every this many arrivals.
        every: usize,
    },
    /// Print the Section-4 cardinality/cost analysis.
    Estimate {
        /// Cardinality `N`.
        n: usize,
        /// Dimensionality `d`.
        dims: usize,
        /// Number of sites `m`.
        sites: usize,
    },
    /// Print usage.
    Help,
}

/// Usage text printed by `dsud help` and on argument errors.
pub const USAGE: &str = "\
dsud — distributed skyline queries over uncertain data

USAGE:
  dsud generate --n <N> [--dims <D>] [--dist independent|correlated|anticorrelated|nyse]
                [--gaussian <MU>] [--seed <S>] [--out <FILE>]
  dsud query    --input <FILE> [--sites <M>] [--q <Q>] [--algorithm dsud|edsud|baseline]
                [--subspace 0,2,...] [--limit <K>] [--seed <S>] [--report <FILE>]
                [--transport inline|threaded|tcp] [--failure strict|degrade]
                [--batch <K>|auto] [--pipeline <W>|auto] [--wire columnar|legacy]
                [--topology flat|tree:<F>|auto] [--plan sketch|static]
  dsud vertical --input <FILE> [--q <Q>]
  dsud stream   --input <FILE> [--q <Q>] [--window <W>] [--every <K>]
  dsud estimate [--n <N>] [--dims <D>] [--sites <M>]
  dsud serve    --input <FILE> [--sites <M>] [--seed <S>] [--port <P>]
                [--transport inline|threaded|tcp] [--failure strict|degrade]
                [--batch <K>|auto] [--pipeline <W>|auto] [--wire columnar|legacy]
                [--topology flat|tree:<F>|auto] [--plan sketch|static]
                [--max-concurrent <N>] [--cache <N>]
                [--heartbeat <N>] [--op-log <N>]
  dsud client   --addr <HOST:PORT> [--algorithm dsud|edsud] [--q <Q>]
                [--subspace 0,2,...] [--limit <K>] [--report <FILE>]
                [--deadline <MS>] [--insert '<tuple json>']
                [--delete '<tuple json>'] [--shutdown]
  dsud help

Flag notes:
  --transport  inline|threaded|tcp give bit-identical answers; only
               failure behavior and wall-clock differ.
  --failure    strict aborts on a dead site; degrade quarantines it and
               reports upper bounds (needs a fallible transport).
  --batch      auto sizes feedback rounds from the candidate backlog;
               a fixed K coalesces K candidates per round.
  --pipeline   auto is the double buffer (W=2); W>1 overlaps rounds on
               threaded/tcp transports. Neither flag changes the answer.
  --wire       columnar (default) packs bulk frames as fixed-width column
               sections decoded in place; legacy keeps the row encoding.
               Bit-identical answers either way.
  --topology   flat links the root to every site; tree:<F> interposes
               aggregators of fan-out F>=2 that merge frames (tree:1 is
               rejected — it merges nothing); auto picks F=ceil(sqrt(m)).
               Answers stay bit-identical at every setting and compose
               with --batch/--pipeline/--wire unchanged (aggregate frames
               carry the chosen wire layout inside them). With --failure
               degrade, a dead aggregator quarantines its whole subtree,
               stamped as upper bounds like any lost site.
  --plan       sketch (default) gathers one compact mergeable sketch per
               site before the first round and sizes --batch auto rounds
               from the observed probability distribution; static keeps
               the fixed clamp. Only pays off with --batch auto; answers
               stay bit-identical either way, and a site that cannot ship
               a sketch silently falls back to the static schedule.
  --deadline   (client) per-query budget in ms; the server cancels at the
               next round boundary and streams the partial answer, marked
               CANCELLED. Nothing cancelled or degraded enters the cache.
  --heartbeat  (serve) probe all sites every N served queries; failed
               sites are quarantined, recovered ones resync missed
               updates and rejoin. 0 (default) disables the sweep.
  --op-log     (serve) deferred-update log capacity for rejoin resync;
               outages longer than the log force a full bootstrap and
               evicted deferred ops are lost (default 1024).
  serve runs queries with ITS transport/failure/batch/pipeline/wire flags;
  clients choose only what to ask (algorithm, q, subspace, limit).

Data files hold one JSON tuple per line:
  {\"id\":{\"site\":0,\"seq\":0},\"values\":[0.1,0.9],\"prob\":0.8}";

/// Parses a command line (without the program name).
///
/// # Errors
///
/// Returns [`CliError::Usage`] describing the problem.
pub fn parse(args: &[String]) -> Result<Command, CliError> {
    let Some(first) = args.first() else {
        return Ok(Command::Help);
    };
    let flags = parse_flags(&args[1..])?;
    let get = |key: &str| flags.get(key).map(String::as_str);
    let parse_num = |key: &str, default: usize| -> Result<usize, CliError> {
        match get(key) {
            Some(v) => v
                .parse()
                .map_err(|_| CliError::Usage(format!("--{key} expects an integer, got '{v}'"))),
            None => Ok(default),
        }
    };
    let parse_f64 = |key: &str, default: f64| -> Result<f64, CliError> {
        match get(key) {
            Some(v) => v
                .parse()
                .map_err(|_| CliError::Usage(format!("--{key} expects a number, got '{v}'"))),
            None => Ok(default),
        }
    };

    match first.as_str() {
        "generate" => {
            let n = parse_num("n", 0)?;
            if n == 0 {
                return Err(CliError::Usage("generate requires --n <N> (> 0)".into()));
            }
            let dist = match get("dist").unwrap_or("independent") {
                "independent" => Distribution::Independent,
                "correlated" => Distribution::Correlated,
                "anticorrelated" => Distribution::Anticorrelated,
                "nyse" => Distribution::Nyse,
                other => return Err(CliError::Usage(format!("unknown distribution '{other}'"))),
            };
            let gaussian_mean = match get("gaussian") {
                Some(v) => Some(v.parse().map_err(|_| {
                    CliError::Usage(format!("--gaussian expects a mean, got '{v}'"))
                })?),
                None => None,
            };
            Ok(Command::Generate {
                n,
                dims: parse_num("dims", 2)?,
                dist,
                gaussian_mean,
                seed: parse_num("seed", 0)? as u64,
                out: get("out").filter(|v| *v != "-").map(PathBuf::from),
            })
        }
        "query" => {
            let input = get("input")
                .ok_or_else(|| CliError::Usage("query requires --input <FILE>".into()))?;
            let algorithm = match get("algorithm").unwrap_or("edsud") {
                "dsud" => Algorithm::Dsud,
                "edsud" => Algorithm::Edsud,
                "baseline" => Algorithm::Baseline,
                other => return Err(CliError::Usage(format!("unknown algorithm '{other}'"))),
            };
            let subspace = subspace_flag(get("subspace"))?;
            let limit = match get("limit") {
                Some(v) => Some(v.parse().map_err(|_| {
                    CliError::Usage(format!("--limit expects an integer, got '{v}'"))
                })?),
                None => None,
            };
            Ok(Command::Query {
                input: PathBuf::from(input),
                sites: parse_num("sites", 8)?,
                q: parse_f64("q", 0.3)?,
                algorithm,
                subspace,
                limit,
                seed: parse_num("seed", 0)? as u64,
                report: get("report").map(PathBuf::from),
                transport: transport_flag(get("transport"))?,
                failure: failure_flag(get("failure"))?,
                batch: batch_flag(get("batch"))?,
                pipeline: pipeline_flag(get("pipeline"))?,
                wire: wire_flag(get("wire"))?,
                topology: topology_flag(get("topology"))?,
                plan: plan_flag(get("plan"))?,
            })
        }
        "serve" => {
            let input = get("input")
                .ok_or_else(|| CliError::Usage("serve requires --input <FILE>".into()))?;
            let port = parse_num("port", 0)?;
            let port = u16::try_from(port)
                .map_err(|_| CliError::Usage(format!("--port expects 0..=65535, got '{port}'")))?;
            let max_concurrent = parse_num("max-concurrent", 8)?;
            if max_concurrent == 0 {
                return Err(CliError::Usage("--max-concurrent must be at least 1".into()));
            }
            Ok(Command::Serve {
                input: PathBuf::from(input),
                sites: parse_num("sites", 8)?,
                seed: parse_num("seed", 0)? as u64,
                port,
                transport: transport_flag(get("transport"))?,
                failure: failure_flag(get("failure"))?,
                batch: batch_flag(get("batch"))?,
                pipeline: pipeline_flag(get("pipeline"))?,
                wire: wire_flag(get("wire"))?,
                max_concurrent,
                cache: parse_num("cache", 64)?,
                heartbeat: parse_num("heartbeat", 0)? as u64,
                op_log: parse_num("op-log", 1024)?,
                topology: topology_flag(get("topology"))?,
                plan: plan_flag(get("plan"))?,
            })
        }
        "client" => {
            let addr = get("addr")
                .ok_or_else(|| CliError::Usage("client requires --addr <HOST:PORT>".into()))?;
            let algorithm = match get("algorithm").unwrap_or("edsud") {
                "dsud" => Algorithm::Dsud,
                "edsud" => Algorithm::Edsud,
                "baseline" => {
                    return Err(CliError::Usage(
                        "the daemon serves dsud|edsud; run baseline locally via 'dsud query'"
                            .into(),
                    ))
                }
                other => return Err(CliError::Usage(format!("unknown algorithm '{other}'"))),
            };
            let shutdown = match get("shutdown") {
                None => false,
                Some("true") => true,
                Some("false") => false,
                Some(v) => {
                    return Err(CliError::Usage(format!(
                        "--shutdown is a bare flag (or true|false), got '{v}'"
                    )))
                }
            };
            Ok(Command::Client {
                addr: addr.to_string(),
                algorithm,
                q: parse_f64("q", 0.3)?,
                subspace: subspace_flag(get("subspace"))?,
                limit: match get("limit") {
                    Some(v) => Some(v.parse().map_err(|_| {
                        CliError::Usage(format!("--limit expects an integer, got '{v}'"))
                    })?),
                    None => None,
                },
                report: get("report").map(PathBuf::from),
                deadline: match get("deadline") {
                    Some(v) => Some(v.parse().map_err(|_| {
                        CliError::Usage(format!("--deadline expects milliseconds, got '{v}'"))
                    })?),
                    None => None,
                },
                insert: get("insert").map(String::from),
                delete: get("delete").map(String::from),
                shutdown,
            })
        }
        "vertical" => {
            let input = get("input")
                .ok_or_else(|| CliError::Usage("vertical requires --input <FILE>".into()))?;
            Ok(Command::Vertical { input: PathBuf::from(input), q: parse_f64("q", 0.3)? })
        }
        "stream" => {
            let input = get("input")
                .ok_or_else(|| CliError::Usage("stream requires --input <FILE>".into()))?;
            Ok(Command::Stream {
                input: PathBuf::from(input),
                q: parse_f64("q", 0.3)?,
                window: parse_num("window", 1_000)?,
                every: parse_num("every", 1_000)?,
            })
        }
        "estimate" => Ok(Command::Estimate {
            n: parse_num("n", 2_000_000)?,
            dims: parse_num("dims", 3)?,
            sites: parse_num("sites", 60)?,
        }),
        "help" | "--help" | "-h" => Ok(Command::Help),
        other => Err(CliError::Usage(format!("unknown command '{other}' — try 'dsud help'"))),
    }
}

/// Parses `--transport` (defaults to `inline`).
fn transport_flag(v: Option<&str>) -> Result<Transport, CliError> {
    match v {
        Some(v) => v.parse::<Transport>().map_err(|_| {
            CliError::Usage(format!("--transport expects inline|threaded|tcp, got '{v}'"))
        }),
        None => Ok(Transport::Inline),
    }
}

/// Parses `--failure` (defaults to `strict`).
fn failure_flag(v: Option<&str>) -> Result<FailurePolicy, CliError> {
    match v {
        Some(v) => v
            .parse::<FailurePolicy>()
            .map_err(|_| CliError::Usage(format!("--failure expects strict|degrade, got '{v}'"))),
        None => Ok(FailurePolicy::Strict),
    }
}

/// Parses `--batch` (defaults to one candidate per round).
fn batch_flag(v: Option<&str>) -> Result<BatchSize, CliError> {
    match v {
        Some(v) => v.parse::<BatchSize>().map_err(|_| {
            CliError::Usage(format!("--batch expects a count >= 1 or auto, got '{v}'"))
        }),
        None => Ok(BatchSize::default()),
    }
}

/// Parses `--pipeline` (defaults to no overlap).
fn pipeline_flag(v: Option<&str>) -> Result<PipelineDepth, CliError> {
    match v {
        Some(v) => v.parse::<PipelineDepth>().map_err(|_| {
            CliError::Usage(format!("--pipeline expects a window >= 1 or auto, got '{v}'"))
        }),
        None => Ok(PipelineDepth::default()),
    }
}

/// Parses `--wire` (defaults to `columnar`: the CLI always prefers the
/// compact layout; the library default stays `legacy` for byte-pinned
/// compatibility tests).
fn wire_flag(v: Option<&str>) -> Result<WireFormat, CliError> {
    match v {
        Some(v) => v
            .parse::<WireFormat>()
            .map_err(|_| CliError::Usage(format!("--wire expects legacy|columnar, got '{v}'"))),
        None => Ok(WireFormat::Columnar),
    }
}

/// Parses `--plan` (defaults to `sketch`: the CLI always prefers the
/// adaptive round planner; the library default stays `static` for
/// frame-count-pinned compatibility tests).
fn plan_flag(v: Option<&str>) -> Result<PlanMode, CliError> {
    match v {
        Some(v) => v
            .parse::<PlanMode>()
            .map_err(|_| CliError::Usage(format!("--plan expects sketch|static, got '{v}'"))),
        None => Ok(PlanMode::Sketch),
    }
}

/// Parses `--topology` (defaults to `flat`). Nonsensical fan-outs fail
/// here, before any data is loaded: `tree:1` would merge nothing and
/// `tree:0` would fan out to nobody, so both are usage errors.
fn topology_flag(v: Option<&str>) -> Result<Topology, CliError> {
    match v {
        Some(v) => v.parse::<Topology>().map_err(|_| {
            CliError::Usage(format!(
                "--topology expects flat|tree:<fanout>=2|auto (tree:1 merges nothing), got '{v}'"
            ))
        }),
        None => Ok(Topology::Flat),
    }
}

/// Parses `--subspace 0,2,...` into dimension indices.
fn subspace_flag(v: Option<&str>) -> Result<Option<Vec<usize>>, CliError> {
    match v {
        Some(spec) => {
            let dims: Result<Vec<usize>, _> =
                spec.split(',').map(str::trim).map(str::parse).collect();
            Ok(Some(dims.map_err(|_| {
                CliError::Usage(format!("--subspace expects indices like 0,2 — got '{spec}'"))
            })?))
        }
        None => Ok(None),
    }
}

/// Splits `--key value` pairs into a map. A flag followed by another flag
/// (or by nothing) is a bare boolean and stores `"true"` — `--shutdown`
/// and `--shutdown true` parse identically.
fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, CliError> {
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let Some(key) = args[i].strip_prefix("--") else {
            return Err(CliError::Usage(format!("expected a --flag, got '{}'", args[i])));
        };
        let value = match args.get(i + 1) {
            Some(v) if !v.starts_with("--") => {
                i += 2;
                v.clone()
            }
            _ => {
                i += 1;
                "true".to_string()
            }
        };
        flags.insert(key.to_string(), value);
    }
    Ok(flags)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_generate() {
        let cmd = parse(&argv(
            "generate --n 100 --dims 3 --dist anticorrelated --seed 7 --out data.jsonl",
        ))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Generate {
                n: 100,
                dims: 3,
                dist: Distribution::Anticorrelated,
                gaussian_mean: None,
                seed: 7,
                out: Some(PathBuf::from("data.jsonl")),
            }
        );
    }

    #[test]
    fn parses_query_with_subspace_and_limit() {
        let cmd = parse(&argv(
            "query --input d.jsonl --sites 4 --q 0.5 --algorithm dsud --subspace 0,2 --limit 5",
        ))
        .unwrap();
        let Command::Query { sites, q, algorithm, subspace, limit, .. } = cmd else { panic!() };
        assert_eq!(sites, 4);
        assert_eq!(q, 0.5);
        assert_eq!(algorithm, Algorithm::Dsud);
        assert_eq!(subspace, Some(vec![0, 2]));
        assert_eq!(limit, Some(5));
    }

    #[test]
    fn defaults_are_sensible() {
        let Command::Query {
            sites,
            q,
            algorithm,
            subspace,
            limit,
            seed,
            report,
            transport,
            failure,
            batch,
            pipeline,
            wire,
            topology,
            plan,
            ..
        } = parse(&argv("query --input d.jsonl")).unwrap()
        else {
            panic!()
        };
        assert_eq!((sites, q, algorithm), (8, 0.3, Algorithm::Edsud));
        assert_eq!((subspace, limit, seed), (None, None, 0));
        assert_eq!(report, None);
        assert_eq!(transport, Transport::Inline);
        assert_eq!(failure, FailurePolicy::Strict);
        assert_eq!(batch, BatchSize::Fixed(1));
        assert_eq!(pipeline, PipelineDepth::Fixed(1));
        assert_eq!(wire, WireFormat::Columnar);
        assert_eq!(topology, Topology::Flat);
        assert_eq!(plan, PlanMode::Sketch);
    }

    #[test]
    fn parses_topologies_and_rejects_mergeless_trees() {
        for (flag, expected) in [
            ("flat", Topology::Flat),
            ("tree:2", Topology::Tree(2)),
            ("tree:8", Topology::Tree(8)),
            ("auto", Topology::Auto),
        ] {
            let Command::Query { topology, .. } =
                parse(&argv(&format!("query --input d.jsonl --topology {flag}"))).unwrap()
            else {
                panic!()
            };
            assert_eq!(topology, expected, "{flag}");
        }
        let Command::Serve { topology, .. } =
            parse(&argv("serve --input d.jsonl --topology tree:4")).unwrap()
        else {
            panic!()
        };
        assert_eq!(topology, Topology::Tree(4));

        // A fan-out below 2 merges nothing: rejected before data loads,
        // on both the one-shot and the served path.
        for bad in ["tree:1", "tree:0", "tree:", "star"] {
            assert!(parse(&argv(&format!("query --input d.jsonl --topology {bad}"))).is_err());
            assert!(parse(&argv(&format!("serve --input d.jsonl --topology {bad}"))).is_err());
        }
    }

    #[test]
    fn parses_wire_formats() {
        for (flag, expected) in [("legacy", WireFormat::Legacy), ("columnar", WireFormat::Columnar)]
        {
            let Command::Query { wire, .. } =
                parse(&argv(&format!("query --input d.jsonl --wire {flag}"))).unwrap()
            else {
                panic!()
            };
            assert_eq!(wire, expected);
        }
        let Command::Serve { wire, .. } =
            parse(&argv("serve --input d.jsonl --wire legacy")).unwrap()
        else {
            panic!()
        };
        assert_eq!(wire, WireFormat::Legacy);
        assert!(parse(&argv("query --input d.jsonl --wire carrier-pigeon")).is_err());
    }

    #[test]
    fn parses_plan_modes() {
        for (flag, expected) in [("sketch", PlanMode::Sketch), ("static", PlanMode::Static)] {
            let Command::Query { plan, .. } =
                parse(&argv(&format!("query --input d.jsonl --plan {flag}"))).unwrap()
            else {
                panic!()
            };
            assert_eq!(plan, expected);
        }
        let Command::Serve { plan, .. } =
            parse(&argv("serve --input d.jsonl --plan static")).unwrap()
        else {
            panic!()
        };
        assert_eq!(plan, PlanMode::Static);
        assert!(parse(&argv("query --input d.jsonl --plan crystal-ball")).is_err());
    }

    #[test]
    fn parses_pipeline_depths() {
        for (flag, expected) in [("8", PipelineDepth::Fixed(8)), ("auto", PipelineDepth::Auto)] {
            let Command::Query { pipeline, .. } =
                parse(&argv(&format!("query --input d.jsonl --pipeline {flag}"))).unwrap()
            else {
                panic!()
            };
            assert_eq!(pipeline, expected);
        }
        assert!(parse(&argv("query --input d.jsonl --pipeline 0")).is_err());
        assert!(parse(&argv("query --input d.jsonl --pipeline deep")).is_err());
    }

    #[test]
    fn parses_batch_sizes() {
        for (flag, expected) in [("16", BatchSize::Fixed(16)), ("auto", BatchSize::Auto)] {
            let Command::Query { batch, .. } =
                parse(&argv(&format!("query --input d.jsonl --batch {flag}"))).unwrap()
            else {
                panic!()
            };
            assert_eq!(batch, expected);
        }
        assert!(parse(&argv("query --input d.jsonl --batch 0")).is_err());
        assert!(parse(&argv("query --input d.jsonl --batch many")).is_err());
    }

    #[test]
    fn parses_failure_policy() {
        for (flag, expected) in
            [("strict", FailurePolicy::Strict), ("degrade", FailurePolicy::Degrade)]
        {
            let Command::Query { failure, .. } =
                parse(&argv(&format!("query --input d.jsonl --failure {flag}"))).unwrap()
            else {
                panic!()
            };
            assert_eq!(failure, expected);
        }
        assert!(parse(&argv("query --input d.jsonl --failure lenient")).is_err());
    }

    #[test]
    fn parses_transport() {
        for (flag, expected) in [
            ("inline", Transport::Inline),
            ("threaded", Transport::Threaded),
            ("tcp", Transport::Tcp),
        ] {
            let Command::Query { transport, .. } =
                parse(&argv(&format!("query --input d.jsonl --transport {flag}"))).unwrap()
            else {
                panic!()
            };
            assert_eq!(transport, expected);
        }
        assert!(parse(&argv("query --input d.jsonl --transport smoke-signal")).is_err());
    }

    #[test]
    fn parses_report_path() {
        let Command::Query { report, .. } =
            parse(&argv("query --input d.jsonl --report run.json")).unwrap()
        else {
            panic!()
        };
        assert_eq!(report, Some(PathBuf::from("run.json")));
    }

    #[test]
    fn parses_serve_with_defaults_and_overrides() {
        let Command::Serve {
            sites, port, transport, max_concurrent, cache, heartbeat, op_log, ..
        } = parse(&argv("serve --input d.jsonl")).unwrap()
        else {
            panic!()
        };
        assert_eq!((sites, port), (8, 0));
        assert_eq!(transport, Transport::Inline);
        assert_eq!((max_concurrent, cache), (8, 64));
        assert_eq!((heartbeat, op_log), (0, 1024), "health sweep off, one-k op log by default");

        let Command::Serve {
            port, transport, max_concurrent, cache, batch, heartbeat, op_log, ..
        } = parse(&argv(
            "serve --input d.jsonl --port 7878 --transport tcp --max-concurrent 4 --cache 0 \
                 --batch auto --heartbeat 1 --op-log 32",
        ))
        .unwrap()
        else {
            panic!()
        };
        assert_eq!(port, 7878);
        assert_eq!(transport, Transport::Tcp);
        assert_eq!((max_concurrent, cache), (4, 0));
        assert_eq!(batch, BatchSize::Auto);
        assert_eq!((heartbeat, op_log), (1, 32));

        assert!(parse(&argv("serve")).is_err()); // missing --input
        assert!(parse(&argv("serve --input d.jsonl --max-concurrent 0")).is_err());
        assert!(parse(&argv("serve --input d.jsonl --port 70000")).is_err());
    }

    #[test]
    fn parses_client_query_and_bare_shutdown() {
        let Command::Client { addr, algorithm, q, subspace, limit, deadline, shutdown, .. } =
            parse(&argv("client --addr 127.0.0.1:7878 --q 0.5 --subspace 0,1 --limit 3")).unwrap()
        else {
            panic!()
        };
        assert_eq!(addr, "127.0.0.1:7878");
        assert_eq!(algorithm, Algorithm::Edsud);
        assert_eq!(q, 0.5);
        assert_eq!(subspace, Some(vec![0, 1]));
        assert_eq!(limit, Some(3));
        assert_eq!(deadline, None);
        assert!(!shutdown);

        let Command::Client { deadline, .. } =
            parse(&argv("client --addr 127.0.0.1:7878 --deadline 250")).unwrap()
        else {
            panic!()
        };
        assert_eq!(deadline, Some(250));
        assert!(parse(&argv("client --addr a --deadline soon")).is_err());

        // --shutdown works bare (last flag) and before another flag.
        for line in
            ["client --addr 127.0.0.1:7878 --shutdown", "client --shutdown --addr 127.0.0.1:7878"]
        {
            let Command::Client { shutdown, .. } = parse(&argv(line)).unwrap() else { panic!() };
            assert!(shutdown, "{line}");
        }

        assert!(parse(&argv("client")).is_err()); // missing --addr
        assert!(parse(&argv("client --addr a --algorithm baseline")).is_err());
        assert!(parse(&argv("client --addr a --shutdown maybe")).is_err());
    }

    #[test]
    fn parses_stream() {
        let Command::Stream { q, window, every, .. } =
            parse(&argv("stream --input d.jsonl --q 0.5 --window 200 --every 50")).unwrap()
        else {
            panic!()
        };
        assert_eq!((q, window, every), (0.5, 200, 50));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse(&argv("generate")).is_err()); // missing --n
        assert!(parse(&argv("generate --n ten")).is_err());
        assert!(parse(&argv("query")).is_err()); // missing --input
        assert!(parse(&argv("query --input f --algorithm magic")).is_err());
        assert!(parse(&argv("query --input f --subspace a,b")).is_err());
        assert!(parse(&argv("frobnicate")).is_err());
        assert!(parse(&argv("generate --n")).is_err()); // dangling flag
        assert!(parse(&argv("generate n 5")).is_err()); // not a flag
    }

    #[test]
    fn empty_and_help_yield_help() {
        assert_eq!(parse(&[]).unwrap(), Command::Help);
        assert_eq!(parse(&argv("help")).unwrap(), Command::Help);
        assert_eq!(parse(&argv("--help")).unwrap(), Command::Help);
    }
}
