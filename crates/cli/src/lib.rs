//! `dsud` — command-line front end to the distributed uncertain skyline
//! library.
//!
//! ```text
//! dsud generate --n 10000 --dims 3 --dist anticorrelated --seed 1 --out data.jsonl
//! dsud query    --input data.jsonl --sites 8 --q 0.3 --algorithm edsud
//! dsud vertical --input data.jsonl --q 0.3
//! dsud estimate --n 2000000 --dims 3 --sites 60
//! dsud serve    --input data.jsonl --sites 8 --port 7878
//! dsud client   --addr 127.0.0.1:7878 --q 0.3
//! ```
//!
//! The data format is one JSON-encoded [`UncertainTuple`](dsud_uncertain::UncertainTuple) per line, so
//! files interoperate with anything that speaks the library's serde
//! schema. All logic lives in this library crate (the binary is a thin
//! wrapper) so the test suite can drive every command end-to-end.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod args;
mod commands;
mod error;
pub mod protocol;

pub use args::{parse, Algorithm, Command, Distribution};
pub use commands::run;
pub use error::CliError;
