//! Thin binary wrapper: parse, run, report.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = match dsud_cli::parse(&args) {
        Ok(cmd) => cmd,
        Err(e) => {
            eprintln!("error: {e}\n");
            eprintln!("run 'dsud help' for usage");
            return ExitCode::FAILURE;
        }
    };
    let stdout = std::io::stdout();
    let mut lock = stdout.lock();
    match dsud_cli::run(&cmd, &mut lock) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
