//! The JSON-lines wire protocol between `dsud client` and `dsud serve`.
//!
//! Each request is one JSON object on one line; the server answers with a
//! stream of JSON lines and keeps the connection open for the next request.
//! Exactly one of [`Request`]'s fields is set per line:
//!
//! * `{"query": {...}}` — run a query; the server streams one
//!   `{"result": ...}` line per skyline tuple *as it is confirmed*
//!   (preserving the algorithms' progressiveness end-to-end) and finishes
//!   with a `{"done": {...}}` summary, which embeds the per-query schema-6
//!   [`RunReport`] when the client asked for one.
//! * `{"update": {...}}` — apply an insert/delete through the maintenance
//!   path (invalidates the server's result cache); answered with one
//!   `{"updated": {...}}` line.
//! * `{"shutdown": true}` — stop the daemon; answered with `{"bye": true}`.
//!
//! Errors at any stage come back as a single `{"error": "..."}` line and
//! the connection stays usable.

use serde::{Deserialize, Serialize};

use dsud_core::RunReport;
use dsud_uncertain::UncertainTuple;

/// One client request line. Exactly one of `query` / `update` / `shutdown`
/// should be set; the server checks them in that order.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Request {
    /// Run a skyline query.
    #[serde(default)]
    pub query: Option<QuerySpec>,
    /// Apply a data update.
    #[serde(default)]
    pub update: Option<UpdateSpec>,
    /// Stop the daemon after replying.
    #[serde(default)]
    pub shutdown: bool,
}

/// What to compute. Execution knobs (transport, failure policy, batching,
/// pipelining) are fixed server-side by `dsud serve`'s flags — clients
/// choose *what* to ask, the operator chooses *how* it runs.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct QuerySpec {
    /// `"dsud"` or `"edsud"` (default).
    #[serde(default)]
    pub algorithm: Option<String>,
    /// Probability threshold `q`; defaults to 0.3.
    #[serde(default)]
    pub q: Option<f64>,
    /// Subspace dimension indices; full space when absent.
    #[serde(default)]
    pub subspace: Option<Vec<usize>>,
    /// Progressive top-k limit.
    #[serde(default)]
    pub limit: Option<usize>,
    /// Ask for a per-query [`RunReport`] in the `done` line.
    #[serde(default)]
    pub report: bool,
    /// Per-query deadline in milliseconds: the server cancels the query at
    /// the next coordinator round boundary, streams the partial answer, and
    /// stamps the `done` line `cancelled`.
    #[serde(default)]
    pub deadline_ms: Option<u64>,
}

/// One maintenance operation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct UpdateSpec {
    /// `"insert"` or `"delete"`.
    pub op: String,
    /// The tuple; its id names the home site.
    pub tuple: UncertainTuple,
}

/// One server response line. Exactly one field is set.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Response {
    /// One qualified skyline tuple, streamed progressively.
    #[serde(default)]
    pub result: Option<ResultEntry>,
    /// Query finished; summary and optional report.
    #[serde(default)]
    pub done: Option<DoneSummary>,
    /// Update applied.
    #[serde(default)]
    pub updated: Option<UpdateSummary>,
    /// The daemon acknowledged a shutdown request and is stopping.
    #[serde(default)]
    pub bye: bool,
    /// The request failed; human-readable reason.
    #[serde(default)]
    pub error: Option<String>,
}

/// A qualified skyline tuple with its exact global probability.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResultEntry {
    /// Home site of the tuple.
    pub site: u32,
    /// Per-site sequence number.
    pub seq: u64,
    /// Attribute values.
    pub values: Vec<f64>,
    /// Exact global skyline probability — unless `bound` is set, in which
    /// case it is only a bound of that kind.
    pub probability: f64,
    /// `Some("upper")` on degraded queries: a site was quarantined, so the
    /// probability is an upper bound, not exact. `None` on exact answers.
    #[serde(default)]
    pub bound: Option<String>,
}

/// End-of-query summary.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DoneSummary {
    /// Server-assigned query id.
    pub query_id: u64,
    /// Number of qualified tuples streamed before this line.
    pub count: usize,
    /// Whether the answer came from the server's result cache.
    pub cache_hit: bool,
    /// Microseconds the query waited at the admission gate.
    pub admission_wait_us: u64,
    /// Tuples transmitted between server and sites for this query
    /// (0 on a cache hit).
    pub tuples_transmitted: u64,
    /// Coordinator iterations executed (0 on a cache hit).
    pub iterations: u64,
    /// True when a site was quarantined and probabilities are upper bounds.
    #[serde(default)]
    pub degraded: bool,
    /// True when the query hit its deadline and was cancelled at a round
    /// boundary; the streamed results are the partial progressive answer.
    #[serde(default)]
    pub cancelled: bool,
    /// The per-query schema-6 run report, when requested.
    #[serde(default)]
    pub report: Option<RunReport>,
}

/// Acknowledgement of one maintenance operation.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct UpdateSummary {
    /// Total updates the server has applied, this one included.
    pub updates_applied: u64,
    /// Cached answers invalidated by this update.
    pub cache_invalidated: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_lines_round_trip() {
        let req = Request {
            query: Some(QuerySpec {
                algorithm: Some("dsud".into()),
                q: Some(0.4),
                subspace: Some(vec![0, 2]),
                limit: Some(5),
                report: true,
                deadline_ms: Some(200),
            }),
            ..Request::default()
        };
        let line = serde_json::to_string(&req).unwrap();
        let back: Request = serde_json::from_str(&line).unwrap();
        let spec = back.query.unwrap();
        assert_eq!(spec.algorithm.as_deref(), Some("dsud"));
        assert_eq!(spec.q, Some(0.4));
        assert_eq!(spec.subspace, Some(vec![0, 2]));
        assert_eq!(spec.limit, Some(5));
        assert!(spec.report);
        assert_eq!(spec.deadline_ms, Some(200));
        assert!(!back.shutdown);
    }

    #[test]
    fn sparse_requests_fill_defaults() {
        let back: Request = serde_json::from_str(r#"{"shutdown": true}"#).unwrap();
        assert!(back.shutdown);
        assert!(back.query.is_none());
        assert!(back.update.is_none());

        let back: Request = serde_json::from_str(r#"{"query": {}}"#).unwrap();
        let spec = back.query.unwrap();
        assert_eq!(spec.algorithm, None);
        assert_eq!(spec.q, None);
        assert!(!spec.report);
        assert_eq!(spec.deadline_ms, None);
    }

    #[test]
    fn bound_marker_round_trips_and_defaults_absent() {
        // Pre-marker result lines (no `bound` key) deserialize to None.
        let legacy = r#"{"site":0,"seq":1,"values":[0.5],"probability":0.7}"#;
        let back: ResultEntry = serde_json::from_str(legacy).unwrap();
        assert_eq!(back.bound, None);

        let degraded = ResultEntry { bound: Some("upper".into()), ..back };
        let line = serde_json::to_string(&degraded).unwrap();
        assert!(line.contains(r#""bound":"upper""#), "{line}");
        let back: ResultEntry = serde_json::from_str(&line).unwrap();
        assert_eq!(back.bound.as_deref(), Some("upper"));
    }

    #[test]
    fn response_lines_round_trip() {
        let resp = Response {
            done: Some(DoneSummary {
                query_id: 7,
                count: 3,
                cache_hit: true,
                admission_wait_us: 12,
                tuples_transmitted: 0,
                iterations: 0,
                degraded: false,
                cancelled: false,
                report: None,
            }),
            ..Response::default()
        };
        let line = serde_json::to_string(&resp).unwrap();
        let back: Response = serde_json::from_str(&line).unwrap();
        let done = back.done.unwrap();
        assert_eq!(done.query_id, 7);
        assert!(done.cache_hit);
        assert!(back.result.is_none() && back.error.is_none() && !back.bye);
    }
}
