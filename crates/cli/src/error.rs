use std::fmt;

/// Errors surfaced to the command-line user.
#[derive(Debug)]
#[non_exhaustive]
pub enum CliError {
    /// Argument parsing failed; the string is a user-facing explanation.
    Usage(String),
    /// An input file could not be read or an output file written.
    Io(std::io::Error),
    /// An input line was not a valid tuple.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Underlying serde error message.
        message: String,
    },
    /// The library rejected the request (bad threshold, mask, etc.).
    Library(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(msg) => write!(f, "{msg}"),
            CliError::Io(e) => write!(f, "i/o error: {e}"),
            CliError::Parse { line, message } => {
                write!(f, "line {line}: not a valid tuple ({message})")
            }
            CliError::Library(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for CliError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CliError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}

macro_rules! lib_err {
    ($t:ty) => {
        impl From<$t> for CliError {
            fn from(e: $t) -> Self {
                CliError::Library(e.to_string())
            }
        }
    };
}

lib_err!(dsud_uncertain::Error);
lib_err!(dsud_data::Error);
lib_err!(dsud_core::Error);
lib_err!(dsud_vertical::Error);
