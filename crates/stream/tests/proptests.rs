//! Property-based validation of the sliding-window skyline against naive
//! recomputation over the live window, for arbitrary streams and window
//! sizes.

use proptest::prelude::*;

use dsud_stream::SlidingSkyline;
use dsud_uncertain::{
    probabilistic_skyline, Probability, SubspaceMask, TupleId, UncertainDb, UncertainTuple,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn continuous_answers_match_recomputation(
        stream in prop::collection::vec(
            (prop::collection::vec(0.0f64..40.0, 2), 0.05f64..=1.0),
            1..120,
        ),
        window in 1usize..40,
        q in 0.1f64..=0.9,
    ) {
        let mut sky = SlidingSkyline::new(2, window, q).unwrap();
        for (i, (values, p)) in stream.into_iter().enumerate() {
            let t = UncertainTuple::new(
                TupleId::new(0, i as u64),
                values,
                Probability::new(p).unwrap(),
            )
            .unwrap();
            sky.push(t).unwrap();

            let db = UncertainDb::from_tuples(
                2,
                sky.window_contents().cloned().collect::<Vec<_>>(),
            )
            .unwrap();
            let mut expected: Vec<TupleId> =
                probabilistic_skyline(&db, q, SubspaceMask::full(2).unwrap())
                    .unwrap()
                    .into_iter()
                    .map(|e| e.tuple.id())
                    .collect();
            expected.sort();
            let mut got: Vec<TupleId> =
                sky.skyline().into_iter().map(|e| e.tuple.id()).collect();
            got.sort();
            prop_assert_eq!(got, expected);
            prop_assert!(sky.len() <= window);
        }
    }
}
