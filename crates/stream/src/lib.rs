//! Continuous probabilistic skylines over sliding windows.
//!
//! The DSUD paper's Section 2.2 singles out Zhang et al.'s sliding-window
//! probabilistic skyline (ICDE 2009) as the closest centralized relative:
//! maintain, against a count-based window of the most recent `W` uncertain
//! tuples, the set of tuples whose skyline probability within the window
//! is at least `q` — continuously, as the stream flows.
//!
//! [`SlidingSkyline`] implements that semantics with the candidate-set
//! technique the paper describes:
//!
//! * the full window lives in a ring buffer backed by a PR-tree, so exact
//!   survival products are always available in logarithmic time;
//! * a **candidate set** is maintained incrementally: a tuple leaves it
//!   permanently once its *newer dominators* alone cap its probability
//!   below `q` — newer tuples outlive it, so the cap only tightens until
//!   the tuple expires. Answering a continuous query touches only the
//!   candidates (typically a tiny fraction of the window), never the whole
//!   window.
//!
//! Soundness and completeness of the candidate rule, and exactness of the
//! reported probabilities, are asserted against naive recomputation by
//! unit and property tests.
//!
//! # Example
//!
//! ```
//! use dsud_stream::SlidingSkyline;
//! use dsud_uncertain::{Probability, TupleId, UncertainTuple};
//!
//! # fn main() -> Result<(), dsud_stream::Error> {
//! let mut sky = SlidingSkyline::new(2, 100, 0.3)?;
//! for seq in 0..500u64 {
//!     let x = (seq % 37) as f64;
//!     let y = ((seq * 7) % 41) as f64;
//!     let t = UncertainTuple::new(
//!         TupleId::new(0, seq),
//!         vec![x, y],
//!         Probability::new(0.5).unwrap(),
//!     )
//!     .unwrap();
//!     sky.push(t)?;
//! }
//! let answer = sky.skyline();
//! assert!(!answer.is_empty());
//! assert!(sky.candidate_count() <= sky.len());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use dsud_prtree::PrTree;
use dsud_uncertain::{dominates_in, SkylineEntry, SubspaceMask, TupleId, UncertainTuple};

/// Errors produced by the sliding-window skyline.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// The window size was zero.
    EmptyWindow,
    /// The threshold was outside `(0, 1]`.
    InvalidThreshold(f64),
    /// A pushed tuple had the wrong dimensionality.
    DimensionMismatch {
        /// Expected dimensionality.
        expected: usize,
        /// Offending dimensionality.
        actual: usize,
    },
    /// A pushed tuple reused an id still inside the window.
    DuplicateId(TupleId),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::EmptyWindow => write!(f, "window size must be positive"),
            Error::InvalidThreshold(q) => {
                write!(f, "threshold {q} is outside the interval (0, 1]")
            }
            Error::DimensionMismatch { expected, actual } => {
                write!(f, "expected {expected} dimensions, got {actual}")
            }
            Error::DuplicateId(id) => write!(f, "tuple id {id} is still in the window"),
        }
    }
}

impl std::error::Error for Error {}

/// A candidate: a window tuple that can still reach the threshold.
#[derive(Debug, Clone)]
struct Candidate {
    tuple: UncertainTuple,
    arrival: u64,
    /// `∏ (1 − P(s))` over *newer* window tuples `s` that dominate this
    /// one. Newer dominators expire later, so `P(t) × newer_discount` is a
    /// monotonically tightening cap on the tuple's probability for the
    /// rest of its lifetime.
    newer_discount: f64,
}

/// Statistics describing the maintained state.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StreamStats {
    /// Tuples pushed so far.
    pub arrivals: u64,
    /// Tuples that have slid out of the window.
    pub expirations: u64,
    /// Candidates dropped early by the newer-dominator rule.
    pub pruned_candidates: u64,
}

/// Continuous threshold probabilistic skyline over a count-based sliding
/// window.
#[derive(Debug)]
pub struct SlidingSkyline {
    dims: usize,
    window: usize,
    q: f64,
    mask: SubspaceMask,
    ring: VecDeque<UncertainTuple>,
    tree: PrTree,
    candidates: VecDeque<Candidate>,
    arrivals: u64,
    stats: StreamStats,
}

impl SlidingSkyline {
    /// Creates a maintainer for `dims`-dimensional tuples, window size
    /// `window`, threshold `q`, over the full space.
    ///
    /// # Errors
    ///
    /// Returns [`Error::EmptyWindow`] or [`Error::InvalidThreshold`].
    pub fn new(dims: usize, window: usize, q: f64) -> Result<Self, Error> {
        let mask = SubspaceMask::full(dims)
            .map_err(|_| Error::DimensionMismatch { expected: 1, actual: dims })?;
        Self::with_mask(dims, window, q, mask)
    }

    /// Like [`SlidingSkyline::new`] with an explicit subspace.
    ///
    /// # Errors
    ///
    /// Same as [`SlidingSkyline::new`].
    pub fn with_mask(
        dims: usize,
        window: usize,
        q: f64,
        mask: SubspaceMask,
    ) -> Result<Self, Error> {
        if window == 0 {
            return Err(Error::EmptyWindow);
        }
        if !(q > 0.0 && q <= 1.0) {
            return Err(Error::InvalidThreshold(q));
        }
        let tree = PrTree::new(dims)
            .map_err(|_| Error::DimensionMismatch { expected: 1, actual: dims })?;
        Ok(SlidingSkyline {
            dims,
            window,
            q,
            mask,
            ring: VecDeque::with_capacity(window),
            tree,
            candidates: VecDeque::new(),
            arrivals: 0,
            stats: StreamStats::default(),
        })
    }

    /// Window capacity `W`.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Tuples currently inside the window.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether the window is empty.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Size of the maintained candidate set.
    pub fn candidate_count(&self) -> usize {
        self.candidates.len()
    }

    /// Maintenance statistics.
    pub fn stats(&self) -> StreamStats {
        self.stats
    }

    /// Pushes the next stream tuple, expiring the oldest if the window is
    /// full.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] or [`Error::DuplicateId`].
    pub fn push(&mut self, tuple: UncertainTuple) -> Result<(), Error> {
        if tuple.dims() != self.dims {
            return Err(Error::DimensionMismatch { expected: self.dims, actual: tuple.dims() });
        }
        // Expire the oldest occupant first.
        if self.ring.len() == self.window {
            let old = self.ring.pop_front().expect("window is full");
            self.tree.remove(old.id(), old.values());
            self.stats.expirations += 1;
            while self
                .candidates
                .front()
                .is_some_and(|c| c.arrival + self.window as u64 <= self.arrivals)
            {
                self.candidates.pop_front();
            }
        }
        self.tree.insert(tuple.clone()).map_err(|e| match e {
            dsud_prtree::Error::DuplicateId => Error::DuplicateId(tuple.id()),
            _ => Error::DimensionMismatch { expected: self.dims, actual: tuple.dims() },
        })?;

        // Newer-dominator rule: the arrival discounts every candidate it
        // dominates, permanently.
        let factor = tuple.prob().complement();
        let q = self.q;
        let mask = self.mask;
        let mut pruned = 0;
        self.candidates.retain_mut(|c| {
            if dominates_in(tuple.values(), c.tuple.values(), mask) {
                c.newer_discount *= factor;
                if c.tuple.prob().get() * c.newer_discount < q {
                    pruned += 1;
                    return false;
                }
            }
            true
        });
        self.stats.pruned_candidates += pruned;

        // The arrival itself becomes a candidate if its own probability
        // allows (it has no newer dominators yet).
        if tuple.prob().get() >= self.q {
            self.candidates.push_back(Candidate {
                tuple: tuple.clone(),
                arrival: self.arrivals,
                newer_discount: 1.0,
            });
        }
        self.ring.push_back(tuple);
        self.arrivals += 1;
        self.stats.arrivals += 1;
        Ok(())
    }

    /// The current answer: every window tuple whose exact skyline
    /// probability (within the window) is at least `q`, descending.
    ///
    /// Touches only the candidate set; probabilities come from the
    /// window's PR-tree and are exact.
    pub fn skyline(&self) -> Vec<SkylineEntry> {
        let mut out: Vec<SkylineEntry> = self
            .candidates
            .iter()
            .filter_map(|c| {
                let p =
                    c.tuple.prob().get() * self.tree.survival_product(c.tuple.values(), self.mask);
                (p >= self.q).then(|| SkylineEntry { tuple: c.tuple.clone(), probability: p })
            })
            .collect();
        out.sort_by(|a, b| {
            b.probability
                .partial_cmp(&a.probability)
                .expect("probabilities are finite")
                .then_with(|| a.tuple.id().cmp(&b.tuple.id()))
        });
        out
    }

    /// Read access to the current window contents, oldest first.
    pub fn window_contents(&self) -> impl Iterator<Item = &UncertainTuple> {
        self.ring.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsud_uncertain::{probabilistic_skyline, Probability, UncertainDb};

    fn tuple(seq: u64, values: Vec<f64>, p: f64) -> UncertainTuple {
        UncertainTuple::new(TupleId::new(0, seq), values, Probability::new(p).unwrap()).unwrap()
    }

    /// Naive recomputation over the current window contents.
    fn reference(sky: &SlidingSkyline) -> Vec<(TupleId, f64)> {
        let db = UncertainDb::from_tuples(2, sky.window_contents().cloned().collect::<Vec<_>>())
            .unwrap();
        let mut out: Vec<(TupleId, f64)> =
            probabilistic_skyline(&db, 0.3, SubspaceMask::full(2).unwrap())
                .unwrap()
                .into_iter()
                .map(|e| (e.tuple.id(), e.probability))
                .collect();
        out.sort_by_key(|(id, _)| *id);
        out
    }

    fn assert_matches_reference(sky: &SlidingSkyline) {
        let mut got: Vec<(TupleId, f64)> =
            sky.skyline().into_iter().map(|e| (e.tuple.id(), e.probability)).collect();
        got.sort_by_key(|(id, _)| *id);
        let expected = reference(sky);
        assert_eq!(
            got.iter().map(|(id, _)| *id).collect::<Vec<_>>(),
            expected.iter().map(|(id, _)| *id).collect::<Vec<_>>()
        );
        for ((_, p), (_, e)) in got.iter().zip(&expected) {
            assert!((p - e).abs() < 1e-9);
        }
    }

    fn lcg_stream(n: usize, seed: u64) -> Vec<UncertainTuple> {
        let mut state = seed.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 11) as f64) / ((1u64 << 53) as f64)
        };
        (0..n)
            .map(|i| {
                tuple(
                    i as u64,
                    vec![(next() * 100.0).round(), (next() * 100.0).round()],
                    (next() * 0.99 + 0.005).clamp(0.005, 1.0),
                )
            })
            .collect()
    }

    #[test]
    fn matches_reference_at_every_step() {
        let mut sky = SlidingSkyline::new(2, 50, 0.3).unwrap();
        for t in lcg_stream(300, 1) {
            sky.push(t).unwrap();
            assert_matches_reference(&sky);
        }
        assert_eq!(sky.len(), 50);
        assert_eq!(sky.stats().arrivals, 300);
        assert_eq!(sky.stats().expirations, 250);
    }

    #[test]
    fn candidates_stay_a_small_fraction() {
        let mut sky = SlidingSkyline::new(2, 200, 0.3).unwrap();
        for t in lcg_stream(2_000, 2) {
            sky.push(t).unwrap();
        }
        assert!(sky.stats().pruned_candidates > 0);
        assert!(
            sky.candidate_count() < sky.len(),
            "candidates {} of window {}",
            sky.candidate_count(),
            sky.len()
        );
        assert_matches_reference(&sky);
    }

    #[test]
    fn window_smaller_than_stream_expires_correctly() {
        let mut sky = SlidingSkyline::new(2, 3, 0.3).unwrap();
        // Strong dominator first; it expires after three more pushes.
        sky.push(tuple(0, vec![0.0, 0.0], 0.9)).unwrap();
        sky.push(tuple(1, vec![5.0, 5.0], 0.8)).unwrap();
        // (5,5) is capped at 0.8 × 0.1 = 0.08 < 0.3 → pruned forever; it
        // expires before its dominator... no: dominator is OLDER, so the
        // newer-dominator rule must NOT fire here.
        let ids: Vec<TupleId> = sky.skyline().iter().map(|e| e.tuple.id()).collect();
        assert_eq!(ids, vec![TupleId::new(0, 0)]);
        sky.push(tuple(2, vec![6.0, 6.0], 0.9)).unwrap();
        sky.push(tuple(3, vec![7.0, 7.0], 0.9)).unwrap();
        // (0,0) has expired; (5,5) must resurface as an answer now.
        let ids: Vec<TupleId> = sky.skyline().iter().map(|e| e.tuple.id()).collect();
        assert!(ids.contains(&TupleId::new(0, 1)), "got {ids:?}");
        assert_matches_reference(&sky);
    }

    #[test]
    fn newer_dominator_prunes_forever() {
        let mut sky = SlidingSkyline::new(2, 10, 0.3).unwrap();
        sky.push(tuple(0, vec![5.0, 5.0], 0.8)).unwrap();
        sky.push(tuple(1, vec![1.0, 1.0], 0.9)).unwrap();
        // The newer (1,1) caps (5,5) at 0.8 × 0.1 < 0.3: pruned.
        assert_eq!(sky.candidate_count(), 1);
        assert_eq!(sky.stats().pruned_candidates, 1);
        assert_matches_reference(&sky);
    }

    #[test]
    fn rejects_invalid_construction_and_pushes() {
        assert_eq!(SlidingSkyline::new(2, 0, 0.3).unwrap_err(), Error::EmptyWindow);
        assert!(matches!(SlidingSkyline::new(2, 10, 0.0), Err(Error::InvalidThreshold(_))));
        let mut sky = SlidingSkyline::new(2, 10, 0.3).unwrap();
        assert!(matches!(sky.push(tuple(0, vec![1.0], 0.5)), Err(Error::DimensionMismatch { .. })));
        sky.push(tuple(0, vec![1.0, 1.0], 0.5)).unwrap();
        assert_eq!(
            sky.push(tuple(0, vec![2.0, 2.0], 0.5)),
            Err(Error::DuplicateId(TupleId::new(0, 0)))
        );
    }

    #[test]
    fn subspace_window_works() {
        let mask = SubspaceMask::from_dims(&[0]).unwrap();
        let mut sky = SlidingSkyline::with_mask(2, 20, 0.3, mask).unwrap();
        for t in lcg_stream(100, 3) {
            sky.push(t).unwrap();
        }
        let answer = sky.skyline();
        // One-dimensional subspace: very few qualified tuples.
        assert!(answer.len() <= 5, "got {}", answer.len());
    }
}
