//! Kernel-backed skyline probabilities: sequential reference vs the
//! parallel path at one thread and at the machine's full pool.
//!
//! The `pool=1` row isolates the columnar kernel's gain; the `pool=max`
//! row adds the thread pool on top. All three produce bit-identical
//! probabilities (the sequential-fallback contract).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use dsud_data::{SpatialDistribution, WorkloadSpec};
use dsud_uncertain::{skyline_probabilities, skyline_probabilities_seq, SubspaceMask, UncertainDb};

const N: usize = 20_000;
const DIMS: usize = 4;

fn bench(c: &mut Criterion) {
    let tuples = WorkloadSpec::new(N, DIMS)
        .spatial(SpatialDistribution::Anticorrelated)
        .seed(7)
        .generate()
        .unwrap();
    let db = UncertainDb::from_tuples(DIMS, tuples).unwrap();
    let mask = SubspaceMask::full(DIMS).unwrap();
    let max_pool = std::thread::available_parallelism().map_or(1, usize::from);

    let reference = skyline_probabilities_seq(&db, mask).unwrap();
    for pool in [1, max_pool] {
        threadpool::set_pool_size(pool);
        assert!(
            skyline_probabilities(&db, mask)
                .unwrap()
                .iter()
                .zip(&reference)
                .all(|(a, b)| a.to_bits() == b.to_bits()),
            "parallel kernel must be bit-identical at pool {pool}"
        );
    }
    threadpool::set_pool_size(0);

    let mut group = c.benchmark_group("parallel_skyline");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(5));

    group.bench_function("sequential_reference", |b| {
        b.iter(|| skyline_probabilities_seq(black_box(&db), mask).unwrap());
    });
    for pool in [1, max_pool] {
        group.bench_with_input(BenchmarkId::new("kernel", pool), &pool, |b, &pool| {
            threadpool::set_pool_size(pool);
            b.iter(|| skyline_probabilities(black_box(&db), mask).unwrap());
            threadpool::set_pool_size(0);
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
