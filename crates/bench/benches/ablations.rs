//! Ablations from DESIGN.md:
//! A — e-DSUD bound mode (Paper min-bound vs BroadcastOnly);
//! C — site-side feedback pruning on vs off (DSUD);
//! E — grid synopses vs the paper's free-information bounds (the
//!     Section 5.2 trade-off), across resolutions.
//! Bandwidth effects are printed once per bench run; timing is tracked by
//! Criterion.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use dsud_bench::{quick_sites, run_algo, Algo};
use dsud_core::{Cluster, QueryConfig};
use dsud_data::SpatialDistribution;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(3));
    let sites = quick_sites(10_000, 3, 20, SpatialDistribution::Anticorrelated, 15);

    for algo in [Algo::Edsud, Algo::EdsudBroadcastOnly, Algo::Dsud, Algo::DsudNoPruning] {
        let outcome = run_algo(algo, 3, sites.clone(), 0.3);
        println!(
            "[ablation] {:<20} bandwidth={:<8} broadcasts={:<6} expunged={:<6} pruned={}",
            algo.label(),
            outcome.tuples_transmitted(),
            outcome.stats.broadcasts,
            outcome.stats.expunged,
            outcome.stats.pruned_at_sites
        );
        group.bench_with_input(BenchmarkId::new("run", algo.label()), &algo, |b, &algo| {
            b.iter(|| run_algo(algo, 3, sites.clone(), 0.3));
        });
    }

    // Ablation E: synopsis-assisted e-DSUD. The synopsis is charged its
    // tuple-equivalent cost, so the printed bandwidth answers the paper's
    // Section 5.2 question directly.
    for resolution in [4u16, 8, 16] {
        let config = QueryConfig::new(0.3).expect("valid threshold").synopsis(resolution);
        let mut cluster = Cluster::local(3, sites.clone()).expect("valid sites");
        let outcome = cluster.run_edsud(&config).expect("query succeeds");
        println!(
            "[ablation] e-DSUD+synopsis(r={resolution:<2}) bandwidth={:<8} broadcasts={:<6} expunged={:<6} synopsis_tuples={}",
            outcome.tuples_transmitted(),
            outcome.stats.broadcasts,
            outcome.stats.expunged,
            outcome.traffic.upload.tuples
                .saturating_sub(outcome.stats.broadcasts + outcome.stats.expunged)
        );
        group.bench_with_input(
            BenchmarkId::new("run", format!("e-DSUD+synopsis(r={resolution})")),
            &resolution,
            |b, _| {
                b.iter(|| {
                    let mut cluster = Cluster::local(3, sites.clone()).expect("valid sites");
                    cluster.run_edsud(&config).expect("query succeeds")
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
