//! Eq. 6–8 estimator: cost of the cardinality estimation itself, plus a
//! printed accuracy check against a measured certain skyline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use dsud_core::estimate;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("estimate_accuracy");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(3));
    for d in [2usize, 3, 4, 5] {
        let a = estimate::analyze(60, d, 2_000_000);
        println!(
            "[estimate] d={d}: H={:.1} N_back={:.0} N_local={:.0}",
            a.expected_skylines, a.n_back, a.n_local
        );
        group.bench_with_input(BenchmarkId::new("analyze", d), &d, |b, &d| {
            b.iter(|| estimate::analyze(60, d, 2_000_000));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
