//! Fig. 14 (timing view): Incremental vs Naive maintenance for one batch
//! of updates at 20% and 100% update rates.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use dsud_bench::{build_updates, quick_sites};
use dsud_core::update::{apply_batch, Maintainer};
use dsud_core::{BoundMode, Cluster, SubspaceMask};
use dsud_data::SpatialDistribution;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig14_updates");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(3));
    let data = quick_sites(5_000, 2, 10, SpatialDistribution::Independent, 14);
    for rate in [20usize, 100] {
        let ops = build_updates(&data, rate, 0xfeed);
        for incremental in [true, false] {
            let label = if incremental { "incremental" } else { "naive" };
            group.bench_with_input(
                BenchmarkId::new(label, format!("rate={rate}%")),
                &rate,
                |b, _| {
                    b.iter(|| {
                        let mut cluster = Cluster::local(2, data.clone()).unwrap();
                        let meter = cluster.meter().clone();
                        let (mut maintainer, _) = Maintainer::bootstrap(
                            cluster.links_mut(),
                            &meter,
                            0.3,
                            SubspaceMask::full(2).unwrap(),
                            BoundMode::Paper,
                        )
                        .unwrap();
                        apply_batch(&mut maintainer, cluster.links_mut(), &meter, &ops, incremental)
                            .unwrap()
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
