//! Extension benchmark: sliding-window continuous skyline throughput —
//! push cost and answer cost, with and without a useful candidate set.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use dsud_data::{SpatialDistribution, WorkloadSpec};
use dsud_stream::SlidingSkyline;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("stream_window");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(3));
    for (dist, label) in [
        (SpatialDistribution::Independent, "independent"),
        (SpatialDistribution::Anticorrelated, "anticorrelated"),
    ] {
        let tuples = WorkloadSpec::new(20_000, 2).spatial(dist).seed(41).generate().unwrap();

        group.bench_with_input(BenchmarkId::new("push_stream", label), &label, |b, _| {
            b.iter(|| {
                let mut sky = SlidingSkyline::new(2, 2_000, 0.3).unwrap();
                for t in &tuples {
                    sky.push(t.clone()).unwrap();
                }
                sky.stats()
            });
        });

        // Answer cost over a warmed window.
        let mut sky = SlidingSkyline::new(2, 2_000, 0.3).unwrap();
        for t in &tuples {
            sky.push(t.clone()).unwrap();
        }
        println!(
            "[stream] {label}: candidate set {} of window {}",
            sky.candidate_count(),
            sky.len()
        );
        group.bench_with_input(BenchmarkId::new("skyline_query", label), &label, |b, _| {
            b.iter(|| sky.skyline());
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
