//! Fig. 8 (timing view): DSUD vs e-DSUD across dimensionality d ∈ 2..5 on
//! Independent and Anticorrelated data. The bandwidth series itself is
//! produced by `experiments -- fig8`; this bench tracks the CPU cost of
//! the same sweep at bench scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use dsud_bench::{quick_sites, run_algo, Algo};
use dsud_data::SpatialDistribution;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_dimensionality");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(3));
    for dist in [SpatialDistribution::Independent, SpatialDistribution::Anticorrelated] {
        for d in [2usize, 3, 4, 5] {
            let sites = quick_sites(8_000, d, 10, dist, 8);
            for algo in [Algo::Dsud, Algo::Edsud] {
                group.bench_with_input(
                    BenchmarkId::new(format!("{:?}/{}", dist, algo.label()), d),
                    &d,
                    |b, &d| {
                        b.iter(|| run_algo(algo, d, sites.clone(), 0.3));
                    },
                );
            }
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
