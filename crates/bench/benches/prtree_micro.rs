//! PR-tree micro-benchmarks, including ablation B: aggregate window
//! survival products versus a linear scan over the raw tuples.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use dsud_core::{SubspaceMask, UncertainDb};
use dsud_data::{SpatialDistribution, WorkloadSpec};
use dsud_prtree::{bbs, PrTree};

fn bench(c: &mut Criterion) {
    let n = 50_000;
    let tuples = WorkloadSpec::new(n, 3)
        .spatial(SpatialDistribution::Independent)
        .seed(16)
        .generate()
        .unwrap();
    let db = UncertainDb::from_tuples(3, tuples.clone()).unwrap();
    let tree = PrTree::bulk_load(3, tuples.clone()).unwrap();
    let mask = SubspaceMask::full(3).unwrap();
    let probes: Vec<Vec<f64>> =
        tuples.iter().step_by(n / 64).map(|t| t.values().to_vec()).collect();

    let mut group = c.benchmark_group("prtree_micro");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(3));

    // Ablation B: indexed window product vs linear scan.
    group.bench_function("survival/prtree", |b| {
        b.iter(|| probes.iter().map(|p| tree.survival_product(p, mask)).sum::<f64>());
    });
    group.bench_function("survival/linear_scan", |b| {
        b.iter(|| probes.iter().map(|p| db.survival_product(p)).sum::<f64>());
    });

    group.bench_function("bulk_load", |b| {
        b.iter(|| PrTree::bulk_load(3, tuples.clone()).unwrap());
    });

    group.bench_with_input(BenchmarkId::new("bbs_local_skyline", "q=0.3"), &0.3, |b, &q| {
        b.iter(|| bbs::local_skyline(&tree, q, mask).unwrap());
    });

    group.bench_function("insert_1000", |b| {
        b.iter(|| {
            let mut t = PrTree::new(3).unwrap();
            for tup in tuples.iter().take(1000) {
                t.insert(tup.clone()).unwrap();
            }
            t
        });
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
