//! Fig. 10 (timing view): query cost against the probability threshold
//! q ∈ {0.3, 0.5, 0.7, 0.9}.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use dsud_bench::{quick_sites, run_algo, Algo};
use dsud_data::SpatialDistribution;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10_threshold");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(3));
    let sites = quick_sites(10_000, 3, 20, SpatialDistribution::Anticorrelated, 10);
    for q in [0.3f64, 0.5, 0.7, 0.9] {
        for algo in [Algo::Dsud, Algo::Edsud] {
            group.bench_with_input(
                BenchmarkId::new(algo.label(), format!("q={q}")),
                &q,
                |b, &q| {
                    b.iter(|| run_algo(algo, 3, sites.clone(), q));
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
