//! Fig. 11 (timing view): the NYSE workload across site counts and
//! probability laws (uniform vs gaussian means).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use dsud_bench::{run_algo, Algo};
use dsud_data::nyse::NyseSpec;
use dsud_data::ProbabilityLaw;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig11_nyse");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(3));
    for m in [40usize, 100] {
        let sites = NyseSpec::new(20_000).seed(11).generate_partitioned(m).unwrap();
        for algo in [Algo::Dsud, Algo::Edsud] {
            group.bench_with_input(BenchmarkId::new(algo.label(), format!("m={m}")), &m, |b, _| {
                b.iter(|| run_algo(algo, 2, sites.clone(), 0.3));
            });
        }
    }
    for mu in [0.3f64, 0.9] {
        let sites = NyseSpec::new(20_000)
            .probability_law(ProbabilityLaw::Gaussian { mean: mu, std_dev: 0.2 })
            .seed(12)
            .generate_partitioned(60)
            .unwrap();
        group.bench_with_input(
            BenchmarkId::new("e-DSUD", format!("gaussian mu={mu}")),
            &mu,
            |b, _| {
                b.iter(|| run_algo(Algo::Edsud, 2, sites.clone(), 0.3));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
