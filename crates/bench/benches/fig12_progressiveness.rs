//! Figs. 12–13 (timing view): time to the first reported skyline tuple and
//! to the complete answer — the paper's progressiveness headline. The full
//! bandwidth-vs-reported curves come from `experiments -- fig12 fig13`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use dsud_bench::{quick_sites, run_algo, Algo};
use dsud_data::SpatialDistribution;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig12_progressiveness");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(3));
    for dist in [SpatialDistribution::Independent, SpatialDistribution::Anticorrelated] {
        let sites = quick_sites(10_000, 3, 20, dist, 13);
        for algo in [Algo::Dsud, Algo::Edsud] {
            group.bench_with_input(
                BenchmarkId::new("full_answer", format!("{dist:?}/{}", algo.label())),
                &dist,
                |b, _| {
                    b.iter(|| run_algo(algo, 3, sites.clone(), 0.3));
                },
            );
        }
        // Time-to-first-result is measured inside one run; expose it as a
        // throughput-style metric by timing a run that stops logically at
        // the first report (the run itself cannot stop early, so we time
        // the run and report the recorded first-report latency instead).
        let outcome = run_algo(Algo::Edsud, 3, sites.clone(), 0.3);
        if let Some(first) = outcome.progress.time_to_first() {
            println!(
                "[fig12] {dist:?}: e-DSUD first result after {:?} / {} results total",
                first,
                outcome.progress.len()
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
