//! Fig. 9 (timing view): query cost as the site count m grows, paper range
//! m ∈ {40, 60, 80, 100}.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use dsud_bench::{quick_sites, run_algo, Algo};
use dsud_data::SpatialDistribution;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9_sites");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(3));
    for m in [40usize, 60, 80, 100] {
        let sites = quick_sites(10_000, 3, m, SpatialDistribution::Independent, 9);
        for algo in [Algo::Dsud, Algo::Edsud] {
            group.bench_with_input(BenchmarkId::new(algo.label(), m), &m, |b, _| {
                b.iter(|| run_algo(algo, 3, sites.clone(), 0.3));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
