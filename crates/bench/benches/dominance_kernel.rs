//! Columnar dominance kernel vs the scalar tuple loop.
//!
//! Measures the survival-product primitive both ways at the paper's
//! default scale (N = 20k, d = 4): a row-major loop over `UncertainTuple`
//! values against [`Batch::survival_product`] over the structure-of-arrays
//! columns. Both paths multiply complements in the same ascending row
//! order, so they are bit-identical (asserted before timing).

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use dsud_data::{SpatialDistribution, WorkloadSpec};
use dsud_uncertain::{dominates_in, Batch, SubspaceMask, UncertainTuple};

const N: usize = 20_000;
const DIMS: usize = 4;

fn scalar_survival(tuples: &[UncertainTuple], point: &[f64], mask: SubspaceMask) -> f64 {
    let mut product = 1.0;
    for t in tuples {
        if dominates_in(t.values(), point, mask) {
            product *= 1.0 - t.prob().get();
        }
    }
    product
}

fn bench(c: &mut Criterion) {
    let tuples = WorkloadSpec::new(N, DIMS)
        .spatial(SpatialDistribution::Anticorrelated)
        .seed(16)
        .generate()
        .unwrap();
    let batch = Batch::from_tuples(DIMS, &tuples);
    let mask = SubspaceMask::full(DIMS).unwrap();
    let probes: Vec<Vec<f64>> =
        tuples.iter().step_by(N / 128).map(|t| t.values().to_vec()).collect();

    for p in &probes {
        assert_eq!(
            scalar_survival(&tuples, p, mask).to_bits(),
            batch.survival_product(p, mask).to_bits(),
            "kernel must be bit-identical to the scalar loop"
        );
    }

    let mut group = c.benchmark_group("dominance_kernel");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(3));

    group.bench_function("survival/scalar_loop", |b| {
        b.iter(|| probes.iter().map(|p| scalar_survival(&tuples, black_box(p), mask)).sum::<f64>());
    });
    group.bench_function("survival/columnar_batch", |b| {
        b.iter(|| probes.iter().map(|p| batch.survival_product(black_box(p), mask)).sum::<f64>());
    });

    let mut rows = Vec::new();
    group.bench_function("dominators_of/columnar_batch", |b| {
        b.iter(|| {
            probes
                .iter()
                .map(|p| {
                    rows.clear();
                    batch.dominators_of(black_box(p), mask, &mut rows);
                    rows.len()
                })
                .sum::<usize>()
        });
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
