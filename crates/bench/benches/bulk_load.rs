//! STR bulk-load at one thread vs the machine's full pool.
//!
//! The parallel path splits the sort-tile-recurse slabs and the leaf
//! builds across the pool; the resulting tree shape is pool-size
//! invariant, so the two rows build identical indexes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use dsud_data::{SpatialDistribution, WorkloadSpec};
use dsud_prtree::PrTree;

const N: usize = 20_000;
const DIMS: usize = 4;

fn bench(c: &mut Criterion) {
    let tuples = WorkloadSpec::new(N, DIMS)
        .spatial(SpatialDistribution::Independent)
        .seed(11)
        .generate()
        .unwrap();
    let max_pool = std::thread::available_parallelism().map_or(1, usize::from);

    let mut group = c.benchmark_group("bulk_load");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(5));

    for pool in [1, max_pool] {
        group.bench_with_input(BenchmarkId::new("str", pool), &pool, |b, &pool| {
            threadpool::set_pool_size(pool);
            b.iter(|| PrTree::bulk_load(DIMS, tuples.clone()).unwrap());
            threadpool::set_pool_size(0);
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
