//! Extension benchmark (the paper's future work): the vertically
//! partitioned UTA coordinator vs the centralized computation, plus its
//! access-saving behaviour as data hardness varies.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use dsud_core::{probabilistic_skyline, SubspaceMask, UncertainDb};
use dsud_data::{SpatialDistribution, WorkloadSpec};
use dsud_vertical::{ColumnSite, UtaCoordinator};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("vertical_uta");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(3));
    // Correlated and clustered data are where sorted access pays off —
    // UTA's stopping rule fires early. (On independent data vertical
    // partitioning has no locality to exploit and the coordinator resolves
    // most of the relation; that regime is covered, at small scale, by the
    // correctness tests rather than timed here.)
    for dist in [SpatialDistribution::Correlated, SpatialDistribution::Clustered] {
        let tuples = WorkloadSpec::new(20_000, 3).spatial(dist).seed(30).generate().unwrap();

        let coordinator = UtaCoordinator::new(0.3).unwrap().check_every(32);

        // Access savings are the headline: print them once per run.
        let columns = ColumnSite::partition(&tuples).unwrap();
        let outcome = coordinator.run(&columns).unwrap();
        println!(
            "[vertical] {dist:?}: {} answers, sorted={} random={} resolved={} of {}",
            outcome.skyline.len(),
            outcome.stats.sorted_accesses,
            outcome.stats.random_accesses,
            outcome.stats.resolved,
            tuples.len()
        );

        group.bench_with_input(BenchmarkId::new("uta", format!("{dist:?}")), &dist, |b, _| {
            b.iter(|| {
                let columns = ColumnSite::partition(&tuples).unwrap();
                coordinator.run(&columns).unwrap()
            });
        });
        group.bench_with_input(
            BenchmarkId::new("centralized", format!("{dist:?}")),
            &dist,
            |b, _| {
                let db = UncertainDb::from_tuples(3, tuples.clone()).unwrap();
                let mask = SubspaceMask::full(3).unwrap();
                b.iter(|| probabilistic_skyline(&db, 0.3, mask).unwrap());
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
