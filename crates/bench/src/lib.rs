//! Shared experiment harness for regenerating every table and figure of
//! the paper's evaluation (Section 7).
//!
//! The `experiments` binary drives these helpers to print paper-style data
//! series; the Criterion benches reuse them for timing. Scale knobs come
//! from the environment so the same code serves quick CI runs and
//! full-scale reproductions:
//!
//! * `DSUD_SCALE_N` — global cardinality `N` (default 50,000; the paper
//!   uses 2,000,000);
//! * `DSUD_REPEATS` — seeds averaged per configuration (default 3; the
//!   paper averages 10 queries).

#![forbid(unsafe_code)]

use serde::Serialize;

use dsud_core::update::{Maintainer, UpdateOp};
use dsud_core::{
    baseline, BandwidthMeter, BatchSize, BoundMode, Cluster, LatencyModel, Probability,
    QueryConfig, QueryOutcome, SiteOptions, SubspaceMask, TupleId, UncertainTuple,
};
use dsud_data::nyse::NyseSpec;
use dsud_data::{ProbabilityLaw, SpatialDistribution, WorkloadSpec};

/// Default global cardinality when `DSUD_SCALE_N` is unset.
pub const DEFAULT_N: usize = 50_000;
/// Default number of averaged runs when `DSUD_REPEATS` is unset.
pub const DEFAULT_REPEATS: usize = 3;

/// Reads an environment scale knob.
fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Global cardinality `N` for experiments.
pub fn scale_n() -> usize {
    env_usize("DSUD_SCALE_N", DEFAULT_N)
}

/// Number of seeds averaged per configuration.
pub fn repeats() -> usize {
    env_usize("DSUD_REPEATS", DEFAULT_REPEATS).max(1)
}

/// One experiment configuration (a point on a figure's x-axis).
#[derive(Debug, Clone, Copy, Serialize)]
pub struct ExpSpec {
    /// Global cardinality `N`.
    pub n: usize,
    /// Number of local sites `m`.
    pub m: usize,
    /// Dimensionality `d`.
    pub d: usize,
    /// Probability threshold `q`.
    pub q: f64,
    /// Spatial distribution of the synthetic data.
    pub spatial: SpatialDistribution,
    /// Probability assignment law.
    pub prob: ProbabilityLaw,
    /// Base RNG seed (repeats use `seed + i`).
    pub seed: u64,
}

impl ExpSpec {
    /// The paper's Table 3 defaults at harness scale: `m = 60`, `d = 3`,
    /// `q = 0.3`, independent values, uniform probabilities.
    pub fn table3_defaults() -> Self {
        ExpSpec {
            n: scale_n(),
            m: 60,
            d: 3,
            q: 0.3,
            spatial: SpatialDistribution::Independent,
            prob: ProbabilityLaw::Uniform,
            seed: 1,
        }
    }

    /// Generates the partitioned synthetic workload for one repeat.
    pub fn generate(&self, repeat: usize) -> Vec<Vec<UncertainTuple>> {
        WorkloadSpec::new(self.n, self.d)
            .spatial(self.spatial)
            .probability_law(self.prob)
            .seed(self.seed + repeat as u64)
            .generate_partitioned(self.m)
            .expect("experiment specs are valid")
    }

    /// Generates the partitioned synthetic-NYSE workload for one repeat.
    pub fn generate_nyse(&self, repeat: usize) -> Vec<Vec<UncertainTuple>> {
        NyseSpec::new(self.n)
            .probability_law(self.prob)
            .seed(self.seed + repeat as u64)
            .generate_partitioned(self.m)
            .expect("experiment specs are valid")
    }
}

/// Which algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Algo {
    /// The DSUD baseline of Section 5.1.
    Dsud,
    /// The enhanced e-DSUD of Section 5.2.
    Edsud,
    /// e-DSUD with the loose BroadcastOnly bound (ablation A).
    EdsudBroadcastOnly,
    /// DSUD with site-side pruning disabled (ablation C).
    DsudNoPruning,
}

impl Algo {
    /// Human-readable label used in table headers.
    pub fn label(self) -> &'static str {
        match self {
            Algo::Dsud => "DSUD",
            Algo::Edsud => "e-DSUD",
            Algo::EdsudBroadcastOnly => "e-DSUD(bcast-only)",
            Algo::DsudNoPruning => "DSUD(no-prune)",
        }
    }
}

/// Runs one algorithm over an already-partitioned workload.
pub fn run_algo(algo: Algo, dims: usize, sites: Vec<Vec<UncertainTuple>>, q: f64) -> QueryOutcome {
    run_algo_batched(algo, dims, sites, q, BatchSize::default())
}

/// [`run_algo`] with an explicit feedback batch size — the answer is
/// identical at every batch size; only message and byte counts move.
pub fn run_algo_batched(
    algo: Algo,
    dims: usize,
    sites: Vec<Vec<UncertainTuple>>,
    q: f64,
    batch: BatchSize,
) -> QueryOutcome {
    let options = match algo {
        Algo::DsudNoPruning => SiteOptions { pruning: false, ..SiteOptions::default() },
        _ => SiteOptions::default(),
    };
    let mut cluster =
        Cluster::local_with_options(dims, sites, options).expect("experiment clusters are valid");
    let mut config =
        QueryConfig::new(q).expect("experiment thresholds are valid").batch_size(batch);
    if algo == Algo::EdsudBroadcastOnly {
        config = config.bound_mode(BoundMode::BroadcastOnly);
    }
    match algo {
        Algo::Dsud | Algo::DsudNoPruning => {
            cluster.run_dsud(&config).expect("experiment runs succeed")
        }
        Algo::Edsud | Algo::EdsudBroadcastOnly => {
            cluster.run_edsud(&config).expect("experiment runs succeed")
        }
    }
}

/// Averaged bandwidth results for one configuration.
#[derive(Debug, Clone, Serialize)]
pub struct BandwidthRow {
    /// x-axis label (e.g. "d=3" or "m=60").
    pub x: String,
    /// Mean tuples transmitted by DSUD.
    pub dsud: f64,
    /// Mean tuples transmitted by e-DSUD.
    pub edsud: f64,
    /// Mean minimum conceivable bandwidth (`|answer| × m`).
    pub ceiling: f64,
    /// Mean answer size.
    pub skylines: f64,
}

/// Runs DSUD, e-DSUD, and the ceiling for a configuration, averaged over
/// [`repeats`] seeds (optionally on NYSE data instead of synthetic).
pub fn bandwidth_row(spec: &ExpSpec, x: String, nyse: bool) -> BandwidthRow {
    let r = repeats();
    let (mut dsud, mut edsud, mut ceiling, mut skylines) = (0.0, 0.0, 0.0, 0.0);
    for i in 0..r {
        let sites = if nyse { spec.generate_nyse(i) } else { spec.generate(i) };
        let d_out = run_algo(Algo::Dsud, spec.d, sites.clone(), spec.q);
        let e_out = run_algo(Algo::Edsud, spec.d, sites, spec.q);
        dsud += d_out.tuples_transmitted() as f64;
        edsud += e_out.tuples_transmitted() as f64;
        ceiling += baseline::ceiling(e_out.skyline.len(), spec.m) as f64;
        skylines += e_out.skyline.len() as f64;
    }
    let r = r as f64;
    BandwidthRow {
        x,
        dsud: dsud / r,
        edsud: edsud / r,
        ceiling: ceiling / r,
        skylines: skylines / r,
    }
}

/// One point of a progressiveness curve (Figs. 12–13).
#[derive(Debug, Clone, Serialize)]
pub struct ProgressPoint {
    /// Number of skyline tuples reported so far.
    pub reported: usize,
    /// Cumulative tuples transmitted.
    pub tuples: u64,
    /// Cumulative CPU time, milliseconds.
    pub cpu_ms: f64,
}

/// Down-samples a run's progress log to at most `points` curve samples.
pub fn progress_curve(outcome: &QueryOutcome, points: usize) -> Vec<ProgressPoint> {
    let events = outcome.progress.events();
    if events.is_empty() {
        return Vec::new();
    }
    let step = (events.len() / points.max(1)).max(1);
    let mut out: Vec<ProgressPoint> = events
        .iter()
        .step_by(step)
        .map(|e| ProgressPoint {
            reported: e.reported,
            tuples: e.tuples_transmitted,
            cpu_ms: e.elapsed.as_secs_f64() * 1e3,
        })
        .collect();
    let last = events.last().expect("checked non-empty");
    if out.last().map(|p| p.reported) != Some(last.reported) {
        out.push(ProgressPoint {
            reported: last.reported,
            tuples: last.tuples_transmitted,
            cpu_ms: last.elapsed.as_secs_f64() * 1e3,
        });
    }
    out
}

/// Result of one Fig. 14 update-experiment cell.
///
/// "Response time" follows the paper's reading: the time to deliver fresh
/// global skyline results after the update batch. Incremental maintains
/// `SKY(H)` as updates stream in, so its response is (near-)instant; naive
/// must re-run e-DSUD. Maintenance cost (time paid *during* the updates,
/// plus traffic) is reported separately so the trade-off stays visible.
#[derive(Debug, Clone, Serialize)]
pub struct UpdateRow {
    /// Update rate as a percentage of `N`.
    pub rate_pct: usize,
    /// Incremental: time to fresh results after the batch, milliseconds.
    pub incremental_response_ms: f64,
    /// Naive: time to fresh results after the batch (full e-DSUD re-run
    /// plus its simulated network time), milliseconds.
    pub naive_response_ms: f64,
    /// Incremental: maintenance time paid during the batch (CPU +
    /// simulated network), milliseconds.
    pub incremental_maintenance_ms: f64,
    /// Incremental maintenance traffic, tuples.
    pub incremental_tuples: u64,
    /// Naive refresh traffic, tuples.
    pub naive_tuples: u64,
}

/// Builds a deterministic update batch touching `rate_pct`% of `N` tuples
/// (half inserts, half deletes).
pub fn build_updates(sites: &[Vec<UncertainTuple>], rate_pct: usize, seed: u64) -> Vec<UpdateOp> {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let n: usize = sites.iter().map(Vec::len).sum();
    let count = n * rate_pct / 100;
    let dims = sites[0][0].dims();
    let mut deleted = std::collections::HashSet::new();
    let mut ops = Vec::with_capacity(count);
    for i in 0..count {
        if i % 2 == 0 {
            let site = rng.gen_range(0..sites.len()) as u32;
            let values: Vec<f64> = (0..dims).map(|_| rng.gen::<f64>()).collect();
            let p = Probability::clamped(rng.gen::<f64>());
            ops.push(UpdateOp::Insert(
                UncertainTuple::new(TupleId::new(site, 10_000_000 + i as u64), values, p)
                    .expect("generated tuples are valid"),
            ));
        } else {
            // Sample an undeleted victim.
            for _ in 0..32 {
                let site = rng.gen_range(0..sites.len());
                let victim = &sites[site][rng.gen_range(0..sites[site].len())];
                if deleted.insert(victim.id()) {
                    ops.push(UpdateOp::Delete(victim.clone()));
                    break;
                }
            }
        }
    }
    ops
}

/// Runs one Fig. 14 cell: response time of both strategies for a batch of
/// updates at the given rate.
pub fn update_row(spec: &ExpSpec, rate_pct: usize) -> UpdateRow {
    let latency = LatencyModel::default();
    // (maintenance_ms, response_ms, tuples) for one strategy.
    let strategy = |incremental: bool| -> (f64, f64, u64) {
        let sites = spec.generate(0);
        let ops = build_updates(&sites, rate_pct, spec.seed ^ 0xfeed);
        // Fig. 14 runs the paper's replica policy: deletions of non-member
        // tuples are resolved locally, which is what makes the incremental
        // curve flat (see UpdatePolicy docs for the soundness trade-off).
        let options = SiteOptions {
            update_policy: dsud_core::UpdatePolicy::Replica,
            ..SiteOptions::default()
        };
        let mut cluster = Cluster::local_with_options(spec.d, sites, options)
            .expect("experiment clusters are valid");
        let meter = cluster.meter().clone();
        let mask = SubspaceMask::full(spec.d).expect("dims are valid");
        let (mut maintainer, _) =
            Maintainer::bootstrap(cluster.links_mut(), &meter, spec.q, mask, BoundMode::Paper)
                .expect("bootstrap succeeds");

        // Maintenance phase: the update stream arrives.
        let before = meter.snapshot();
        let started = std::time::Instant::now();
        for op in &ops {
            if incremental {
                maintainer.apply_incremental(cluster.links_mut(), op).expect("updates succeed");
            } else {
                Maintainer::apply_local_only(cluster.links_mut(), op).expect("updates succeed");
            }
        }
        let maintenance_cpu_ms = started.elapsed().as_secs_f64() * 1e3;
        let after_maintenance = meter.snapshot();
        let maintenance_ms =
            maintenance_cpu_ms + latency.network_time_ms(&after_maintenance.since(&before));

        // Response phase: fresh results are requested.
        let started = std::time::Instant::now();
        if incremental {
            // SKY(H) is already maintained; answering costs no traffic.
            let _ = maintainer.skyline();
        } else {
            maintainer.refresh_naive(cluster.links_mut(), &meter).expect("refresh succeeds");
        }
        let response_cpu_ms = started.elapsed().as_secs_f64() * 1e3;
        let traffic = meter.snapshot();
        let response_ms =
            response_cpu_ms + latency.network_time_ms(&traffic.since(&after_maintenance));
        (maintenance_ms, response_ms, traffic.since(&before).tuples_transmitted())
    };
    let (incremental_maintenance_ms, incremental_response_ms, incremental_tuples) = strategy(true);
    let (_, naive_response_ms, naive_tuples) = strategy(false);
    UpdateRow {
        rate_pct,
        incremental_response_ms,
        naive_response_ms,
        incremental_maintenance_ms,
        incremental_tuples,
        naive_tuples,
    }
}

/// Convenience: a quick small cluster for Criterion benches.
pub fn quick_sites(
    n: usize,
    d: usize,
    m: usize,
    spatial: SpatialDistribution,
    seed: u64,
) -> Vec<Vec<UncertainTuple>> {
    WorkloadSpec::new(n, d)
        .spatial(spatial)
        .seed(seed)
        .generate_partitioned(m)
        .expect("bench specs are valid")
}

/// Pretty-prints a bandwidth table and returns the rows for JSON dumping.
pub fn print_bandwidth_table(title: &str, rows: &[BandwidthRow]) {
    println!("\n== {title} ==");
    println!("{:<12} {:>12} {:>12} {:>12} {:>10}", "x", "DSUD", "e-DSUD", "Ceiling", "|SKY|");
    for r in rows {
        println!(
            "{:<12} {:>12.0} {:>12.0} {:>12.0} {:>10.1}",
            r.x, r.dsud, r.edsud, r.ceiling, r.skylines
        );
    }
}

/// Certain-data skyline cardinality via sort-filter-scan: points are
/// processed in ascending coordinate-sum order, so every dominator of a
/// point is examined first and it suffices to test against the accepted
/// skyline (`O(n log n + n·|SKY|)` instead of the naive `O(n²)`).
pub fn certain_skyline_len(points: &[Vec<f64>], mask: SubspaceMask) -> usize {
    let mut order: Vec<usize> = (0..points.len()).collect();
    let sum = |p: &[f64]| -> f64 { mask.dims().take_while(|&d| d < p.len()).map(|d| p[d]).sum() };
    order.sort_by(|&a, &b| {
        sum(&points[a]).partial_cmp(&sum(&points[b])).expect("finite coordinates")
    });
    let mut skyline: Vec<&[f64]> = Vec::new();
    for idx in order {
        let p = &points[idx];
        if !skyline.iter().any(|s| dsud_core::dominates_in(s, p, mask)) {
            skyline.push(p);
        }
    }
    skyline.len()
}

/// The three local databases of the paper's Section 5.3 hotel example
/// (Qingdao, Shanghai, Xiamen), reconstructed so the local skylines match
/// Table 2(a) exactly. Shared by the `table2` experiment and the examples.
pub fn paper_hotel_sites() -> Vec<Vec<UncertainTuple>> {
    fn t(site: u32, seq: u64, values: [f64; 2], p: f64) -> UncertainTuple {
        UncertainTuple::new(
            TupleId::new(site, seq),
            values.to_vec(),
            Probability::new(p).expect("example probabilities are valid"),
        )
        .expect("example values are valid")
    }
    vec![
        vec![
            t(0, 0, [6.0, 6.0], 0.7),
            t(0, 1, [8.0, 4.0], 0.8),
            t(0, 2, [3.0, 8.0], 0.8),
            t(0, 3, [5.0, 5.0], 1.0 - 0.65 / 0.7),
            t(0, 4, [7.0, 3.0], 0.25),
            t(0, 5, [2.0, 7.0], 1.0 - (0.5f64 / 0.8).sqrt()),
            t(0, 6, [2.5, 7.5], 1.0 - (0.5f64 / 0.8).sqrt()),
        ],
        vec![
            t(1, 0, [6.5, 7.0], 0.8),
            t(1, 1, [4.0, 9.0], 0.6),
            t(1, 2, [9.0, 5.0], 0.7),
            t(1, 3, [6.2, 6.8], 1.0 - 0.65 / 0.8),
            t(1, 4, [8.5, 4.8], 1.0 - 0.6 / 0.7),
        ],
        vec![
            t(2, 0, [6.4, 7.5], 0.9),
            t(2, 1, [3.5, 11.0], 0.7),
            t(2, 2, [10.0, 4.5], 0.7),
            t(2, 3, [6.3, 7.4], 1.0 - 0.8 / 0.9),
        ],
    ]
}

/// Runs e-DSUD once and verifies it against the ship-everything baseline;
/// used as a self-check inside the experiments binary.
pub fn verify_against_baseline(spec: &ExpSpec) -> bool {
    let sites = spec.generate(0);
    let mask = SubspaceMask::full(spec.d).expect("dims are valid");
    let meter = BandwidthMeter::new();
    let reference =
        baseline::run(&sites, spec.d, spec.q, mask, &meter).expect("baseline runs succeed");
    let outcome = run_algo(Algo::Edsud, spec.d, sites, spec.q);
    let mut a: Vec<TupleId> = reference.skyline.iter().map(|e| e.tuple.id()).collect();
    let mut b: Vec<TupleId> = outcome.skyline.iter().map(|e| e.tuple.id()).collect();
    a.sort();
    b.sort();
    a == b
}
