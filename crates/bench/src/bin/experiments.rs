//! Regenerates every table and figure of the paper's evaluation
//! (Section 7) at harness scale.
//!
//! ```sh
//! cargo run --release -p dsud-bench --bin experiments -- all
//! cargo run --release -p dsud-bench --bin experiments -- fig8
//! DSUD_SCALE_N=2000000 DSUD_REPEATS=10 cargo run --release -p dsud-bench --bin experiments -- fig9
//! ```
//!
//! Each experiment prints a paper-style data series and appends a JSON
//! artifact under `target/experiments/`.

use std::fs;
use std::path::PathBuf;

use serde::Serialize;

use dsud_bench::{
    bandwidth_row, progress_curve, repeats, run_algo, run_algo_batched, scale_n, update_row,
    verify_against_baseline, Algo, BandwidthRow, ExpSpec,
};
use dsud_core::estimate;
use dsud_data::{ProbabilityLaw, SpatialDistribution};

fn artifact_dir() -> PathBuf {
    let dir = PathBuf::from("target/experiments");
    fs::create_dir_all(&dir).expect("can create target/experiments");
    dir
}

fn dump_json<T: Serialize>(name: &str, value: &T) {
    let path = artifact_dir().join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(value).expect("rows serialize");
    fs::write(&path, json).expect("can write artifact");
    println!("[artifact] {}", path.display());
}

fn dump_svg(name: &str, svg: &str) {
    let path = artifact_dir().join(format!("{name}.svg"));
    fs::write(&path, svg).expect("can write artifact");
    println!("[artifact] {}", path.display());
}

fn print_table(title: &str, rows: &[BandwidthRow], name: &str) {
    dsud_bench::print_bandwidth_table(title, rows);
    dump_json(name, &rows);
    let chart = dsud_plot::CategoryChart::new(title, "configuration", "tuples transmitted")
        .ticks(rows.iter().map(|r| r.x.clone()))
        .series("DSUD", rows.iter().map(|r| r.dsud))
        .series("e-DSUD", rows.iter().map(|r| r.edsud))
        .series("Ceiling", rows.iter().map(|r| r.ceiling));
    dump_svg(name, &chart.to_svg());
}

/// Fig. 8: bandwidth vs dimensionality d ∈ {2,3,4,5}, both distributions.
fn fig8() {
    for (dist, label) in [
        (SpatialDistribution::Independent, "independent"),
        (SpatialDistribution::Anticorrelated, "anticorrelated"),
    ] {
        let rows: Vec<BandwidthRow> = [2usize, 3, 4, 5]
            .iter()
            .map(|&d| {
                let spec = ExpSpec { d, spatial: dist, ..ExpSpec::table3_defaults() };
                bandwidth_row(&spec, format!("d={d}"), false)
            })
            .collect();
        print_table(
            &format!("Fig 8 ({label}): bandwidth vs dimensionality"),
            &rows,
            &format!("fig8_{label}"),
        );
    }
}

/// Fig. 9: bandwidth vs number of sites m ∈ {40,60,80,100}.
fn fig9() {
    for (dist, label) in [
        (SpatialDistribution::Independent, "independent"),
        (SpatialDistribution::Anticorrelated, "anticorrelated"),
    ] {
        let rows: Vec<BandwidthRow> = [40usize, 60, 80, 100]
            .iter()
            .map(|&m| {
                let spec = ExpSpec { m, spatial: dist, ..ExpSpec::table3_defaults() };
                bandwidth_row(&spec, format!("m={m}"), false)
            })
            .collect();
        print_table(
            &format!("Fig 9 ({label}): bandwidth vs number of sites"),
            &rows,
            &format!("fig9_{label}"),
        );
    }
}

/// Fig. 10: bandwidth vs threshold q ∈ {0.3,0.5,0.7,0.9}.
fn fig10() {
    for (dist, label) in [
        (SpatialDistribution::Independent, "independent"),
        (SpatialDistribution::Anticorrelated, "anticorrelated"),
    ] {
        let rows: Vec<BandwidthRow> = [0.3f64, 0.5, 0.7, 0.9]
            .iter()
            .map(|&q| {
                let spec = ExpSpec { q, spatial: dist, ..ExpSpec::table3_defaults() };
                bandwidth_row(&spec, format!("q={q}"), false)
            })
            .collect();
        print_table(
            &format!("Fig 10 ({label}): bandwidth vs threshold"),
            &rows,
            &format!("fig10_{label}"),
        );
    }
}

/// Fig. 11: NYSE — (a) bandwidth vs m, (b) bandwidth vs q (uniform), and
/// (c,d) bandwidth and answer size vs gaussian mean μ.
fn fig11() {
    let rows: Vec<BandwidthRow> = [40usize, 60, 80, 100]
        .iter()
        .map(|&m| {
            let spec = ExpSpec { m, d: 2, ..ExpSpec::table3_defaults() };
            bandwidth_row(&spec, format!("m={m}"), true)
        })
        .collect();
    print_table("Fig 11a (NYSE, uniform): bandwidth vs sites", &rows, "fig11a");

    let rows: Vec<BandwidthRow> = [0.3f64, 0.5, 0.7, 0.9]
        .iter()
        .map(|&q| {
            let spec = ExpSpec { q, d: 2, ..ExpSpec::table3_defaults() };
            bandwidth_row(&spec, format!("q={q}"), true)
        })
        .collect();
    print_table("Fig 11b (NYSE, uniform): bandwidth vs threshold", &rows, "fig11b");

    let rows: Vec<BandwidthRow> = [0.3f64, 0.5, 0.7, 0.9]
        .iter()
        .map(|&mu| {
            let spec = ExpSpec {
                d: 2,
                prob: ProbabilityLaw::Gaussian { mean: mu, std_dev: 0.2 },
                ..ExpSpec::table3_defaults()
            };
            bandwidth_row(&spec, format!("mu={mu}"), true)
        })
        .collect();
    print_table("Fig 11c/d (NYSE, gaussian): bandwidth and answer size vs mean", &rows, "fig11cd");
}

#[derive(Serialize)]
struct ProgressSeries {
    label: String,
    points: Vec<dsud_bench::ProgressPoint>,
}

fn progress_experiment(name: &str, title: &str, nyse: bool, specs: Vec<(String, ExpSpec)>) {
    let mut all = Vec::new();
    println!("\n== {title} ==");
    for (label, spec) in specs {
        for algo in [Algo::Dsud, Algo::Edsud] {
            let sites = if nyse { spec.generate_nyse(0) } else { spec.generate(0) };
            let outcome = run_algo(algo, spec.d, sites, spec.q);
            let points = progress_curve(&outcome, 8);
            println!("-- {label} / {}:", algo.label());
            for p in &points {
                println!(
                    "   reported={:<6} tuples={:<10} cpu={:.1}ms",
                    p.reported, p.tuples, p.cpu_ms
                );
            }
            all.push(ProgressSeries { label: format!("{label}/{}", algo.label()), points });
        }
    }
    dump_json(name, &all);
    let mut bw = dsud_plot::XyChart::new(
        format!("{title} — bandwidth"),
        "skyline tuples reported",
        "tuples transmitted",
    );
    let mut cpu = dsud_plot::XyChart::new(
        format!("{title} — CPU time"),
        "skyline tuples reported",
        "milliseconds",
    );
    for series in &all {
        bw = bw.series(
            series.label.clone(),
            series.points.iter().map(|p| (p.reported as f64, p.tuples as f64)),
        );
        cpu = cpu.series(
            series.label.clone(),
            series.points.iter().map(|p| (p.reported as f64, p.cpu_ms)),
        );
    }
    dump_svg(&format!("{name}_bandwidth"), &bw.to_svg());
    dump_svg(&format!("{name}_cpu"), &cpu.to_svg());
}

/// Fig. 12: progressiveness on synthetic data (bandwidth and CPU time as a
/// function of reported skyline tuples).
fn fig12() {
    progress_experiment(
        "fig12",
        "Fig 12: progressiveness, synthetic data",
        false,
        vec![
            ("independent".to_string(), ExpSpec { ..ExpSpec::table3_defaults() }),
            (
                "anticorrelated".to_string(),
                ExpSpec {
                    spatial: SpatialDistribution::Anticorrelated,
                    ..ExpSpec::table3_defaults()
                },
            ),
        ],
    );
}

/// Fig. 13: progressiveness on NYSE with uniform and gaussian
/// probabilities.
fn fig13() {
    progress_experiment(
        "fig13",
        "Fig 13: progressiveness, NYSE data",
        true,
        vec![
            ("uniform".to_string(), ExpSpec { d: 2, ..ExpSpec::table3_defaults() }),
            (
                "gaussian".to_string(),
                ExpSpec {
                    d: 2,
                    prob: ProbabilityLaw::Gaussian { mean: 0.5, std_dev: 0.2 },
                    ..ExpSpec::table3_defaults()
                },
            ),
        ],
    );
}

/// Fig. 14: update response time vs update rate, Incremental vs Naive.
fn fig14() {
    for (dist, label) in [
        (SpatialDistribution::Independent, "independent"),
        (SpatialDistribution::Anticorrelated, "anticorrelated"),
    ] {
        let spec = ExpSpec { spatial: dist, ..ExpSpec::table3_defaults() };
        let rows: Vec<_> =
            [20usize, 40, 60, 80, 100].iter().map(|&rate| update_row(&spec, rate)).collect();
        println!("\n== Fig 14 ({label}): response time to fresh results vs update rate ==");
        println!(
            "{:<8} {:>14} {:>12} {:>18} {:>12} {:>12}",
            "rate", "Incr resp(ms)", "Naive(ms)", "Incr maint(ms)", "Incr(tuples)", "Naive(tuples)"
        );
        for r in &rows {
            println!(
                "{:<8} {:>14.2} {:>12.1} {:>18.1} {:>12} {:>12}",
                format!("{}%", r.rate_pct),
                r.incremental_response_ms,
                r.naive_response_ms,
                r.incremental_maintenance_ms,
                r.incremental_tuples,
                r.naive_tuples
            );
        }
        dump_json(&format!("fig14_{label}"), &rows);
        let chart = dsud_plot::CategoryChart::new(
            format!("Fig 14 ({label}): response to fresh results"),
            "update rate",
            "milliseconds",
        )
        .ticks(rows.iter().map(|r| format!("{}%", r.rate_pct)))
        .series("Incremental", rows.iter().map(|r| r.incremental_response_ms))
        .series("Naive", rows.iter().map(|r| r.naive_response_ms));
        dump_svg(&format!("fig14_{label}"), &chart.to_svg());
    }
}

/// Observability trajectories: one fully-instrumented DSUD and e-DSUD run
/// at Table 3 defaults, each emitting a schema-versioned
/// [`dsud_core::RunReport`] as `BENCH_<algo>.json` in the working
/// directory (span timings, cost-model counters, progressive trace).
fn reports() {
    use dsud_core::{BatchSize, Cluster, PlanMode, QueryConfig, Recorder, SiteOptions, WireFormat};
    println!("\n== Run reports: instrumented DSUD / e-DSUD at Table 3 defaults ==");
    let spec = ExpSpec::table3_defaults();
    for (algo, name) in [(Algo::Dsud, "dsud"), (Algo::Edsud, "edsud")] {
        let sites = spec.generate(0);
        let recorder = Recorder::enabled();
        // The CLI's serving defaults: auto-batched rounds over columnar
        // frames, so the schema-7 wire counters (`columnar_frames`,
        // `bytes_saved`) measure the layout the daemon actually ships.
        let options = SiteOptions { wire: WireFormat::Columnar, ..SiteOptions::default() };
        let mut cluster = Cluster::local_instrumented(spec.d, sites, options, recorder.clone())
            .expect("experiment clusters are valid");
        let config = QueryConfig::new(spec.q)
            .expect("experiment thresholds are valid")
            .batch_size(BatchSize::Auto)
            .wire_format(WireFormat::Columnar)
            .plan_mode(PlanMode::Sketch);
        let outcome = match algo {
            Algo::Dsud => cluster.run_dsud(&config),
            _ => cluster.run_edsud(&config),
        }
        .expect("experiment queries succeed");
        let mut report = recorder.report(name).expect("recorder is enabled");
        report.batch_size = Some(config.batch.name());
        report.pipeline = Some(config.pipeline.name());
        report.wire = Some(config.wire.as_str().to_string());
        report.topology = Some(dsud_core::Topology::Flat.to_string());
        report.agg_depth = Some(cluster.plan().depth());
        report.root_fanout = Some(cluster.plan().root_fanout());
        report.plan = Some(config.plan.to_string());
        if let Some(s) = outcome.plan.as_ref() {
            report.sketch_bytes = Some(s.sketch_bytes);
            report.plan_us = Some(s.plan_us);
            report.planned_batch = s.planned_batch;
        }
        let path = PathBuf::from(format!("BENCH_{name}.json"));
        let json = serde_json::to_string_pretty(&report).expect("reports serialize");
        fs::write(&path, json).expect("can write run report");
        println!(
            "[artifact] {} — {} answers, {} rounds, {} tuples shipped, {} bytes, {:.1} ms",
            path.display(),
            outcome.skyline.len(),
            report.counters.rounds,
            report.counters.tuples_shipped,
            report.counters.bytes_sent,
            report.wall_ms
        );
    }
}

/// Candidate batching: messages and bytes at batch sizes K ∈ {1, 4, 16,
/// auto} for DSUD and e-DSUD at Table 3 defaults. The skyline is asserted
/// identical across every K — batching is a pure wire optimization.
fn batching() {
    use dsud_core::BatchSize;
    println!("\n== Batched vs unbatched feedback: messages / bytes at Table 3 defaults ==");
    let spec = ExpSpec::table3_defaults();

    #[derive(Serialize)]
    struct Row {
        algo: String,
        batch: String,
        messages: u64,
        bytes: u64,
        tuples: u64,
        answers: usize,
    }
    let mut rows = Vec::new();
    println!(
        "{:<8} {:>6} {:>12} {:>14} {:>12} {:>9}",
        "algo", "batch", "messages", "bytes", "tuples", "answers"
    );
    for algo in [Algo::Dsud, Algo::Edsud] {
        let mut reference: Option<Vec<(u64, u64)>> = None;
        let mut unbatched: Option<(u64, u64)> = None;
        for batch in
            [BatchSize::Fixed(1), BatchSize::Fixed(4), BatchSize::Fixed(16), BatchSize::Auto]
        {
            let sites = spec.generate(0);
            let outcome = run_algo_batched(algo, spec.d, sites, spec.q, batch);
            let answer: Vec<(u64, u64)> = outcome
                .skyline
                .iter()
                .map(|e| (e.tuple.id().seq, e.probability.to_bits()))
                .collect();
            match &reference {
                None => reference = Some(answer),
                Some(r) => {
                    assert_eq!(&answer, r, "{}: batch {batch} changed the answer", { algo.label() })
                }
            }
            let total = outcome.traffic.total();
            match unbatched {
                None => unbatched = Some((total.messages, total.tuples)),
                Some((messages_1, tuples_1)) => {
                    assert_eq!(
                        total.tuples,
                        tuples_1,
                        "{}: batch {batch} changed tuple traffic",
                        algo.label()
                    );
                    if batch == BatchSize::Fixed(16) {
                        // e-DSUD's residual traffic is expunge refills,
                        // which ship no feedback and cannot coalesce.
                        let floor = if matches!(algo, Algo::Edsud) { 2 } else { 5 };
                        assert!(
                            total.messages * floor <= messages_1,
                            "{}: batch 16 sent {} messages vs {} unbatched (need {floor}x)",
                            algo.label(),
                            total.messages,
                            messages_1
                        );
                    }
                }
            }
            println!(
                "{:<8} {:>6} {:>12} {:>14} {:>12} {:>9}",
                algo.label(),
                batch.to_string(),
                total.messages,
                total.bytes,
                total.tuples,
                outcome.skyline.len()
            );
            rows.push(Row {
                algo: algo.label().to_string(),
                batch: batch.to_string(),
                messages: total.messages,
                bytes: total.bytes,
                tuples: total.tuples,
                answers: outcome.skyline.len(),
            });
        }
    }
    dump_json("batching", &rows);
}

/// Sketch-planned rounds: candidate-round frames with `--plan sketch` vs
/// the static `--batch auto` schedule, DSUD and e-DSUD at Table 3
/// defaults. The planner widens auto rounds from the observed probability
/// sketches, so the feedback scatter coalesces into fewer frames; the
/// answer is asserted bit-identical (planning is pure scheduling) and the
/// plan phase itself must cost at most one sketch frame per site.
fn planning() {
    use dsud_core::{BatchSize, Cluster, PlanMode, QueryConfig, SiteOptions};
    println!("\n== Sketch-planned vs static auto rounds: frames at Table 3 defaults ==");
    let spec = ExpSpec::table3_defaults();

    #[derive(Serialize)]
    struct Row {
        algo: String,
        plan: String,
        candidate_frames: u64,
        messages: u64,
        bytes: u64,
        tuples: u64,
        planned_batch: Option<usize>,
        sketch_frames: u64,
        answers: usize,
    }
    let mut rows = Vec::new();
    println!(
        "{:<8} {:>7} {:>12} {:>12} {:>14} {:>12} {:>8} {:>9}",
        "algo", "plan", "cand frames", "messages", "bytes", "tuples", "batch", "answers"
    );
    for algo in [Algo::Dsud, Algo::Edsud] {
        let mut baseline: Option<(Vec<(u64, u64)>, u64, u64)> = None;
        for plan in [PlanMode::Static, PlanMode::Sketch] {
            let mut cluster =
                Cluster::local_with_options(spec.d, spec.generate(0), SiteOptions::default())
                    .expect("experiment clusters are valid");
            let config = QueryConfig::new(spec.q)
                .expect("experiment thresholds are valid")
                .batch_size(BatchSize::Auto)
                .plan_mode(plan);
            let outcome = match algo {
                Algo::Dsud => cluster.run_dsud(&config),
                _ => cluster.run_edsud(&config),
            }
            .expect("experiment queries succeed");
            let answer: Vec<(u64, u64)> = outcome
                .skyline
                .iter()
                .map(|e| (e.tuple.id().seq, e.probability.to_bits()))
                .collect();
            let total = outcome.traffic.total();
            let candidate_frames = outcome.traffic.feedback.messages;
            let summary = outcome.plan.as_ref();
            let sketch_frames = summary.map_or(0, |s| s.frames);
            match &baseline {
                None => baseline = Some((answer, candidate_frames, total.tuples)),
                Some((static_answer, static_frames, static_tuples)) => {
                    assert_eq!(
                        &answer,
                        static_answer,
                        "{}: sketch plan changed the answer",
                        algo.label()
                    );
                    assert_eq!(
                        total.tuples,
                        *static_tuples,
                        "{}: sketch plan changed tuple bandwidth",
                        algo.label()
                    );
                    // The acceptance bar: planned rounds must cut the
                    // candidate/expunge round frames by ≥ 1.2x even after
                    // paying for the plan phase itself.
                    let planned_total = candidate_frames + sketch_frames;
                    assert!(
                        planned_total * 6 <= static_frames * 5,
                        "{}: sketch plan shipped {planned_total} candidate+plan frames vs \
                         {static_frames} static (need 1.2x)",
                        algo.label()
                    );
                    assert!(
                        sketch_frames as usize <= spec.m,
                        "{}: plan phase cost {sketch_frames} frames for {} sites",
                        algo.label(),
                        spec.m
                    );
                }
            }
            println!(
                "{:<8} {:>7} {:>12} {:>12} {:>14} {:>12} {:>8} {:>9}",
                algo.label(),
                plan.to_string(),
                candidate_frames,
                total.messages,
                total.bytes,
                total.tuples,
                summary.and_then(|s| s.planned_batch).map_or("-".into(), |b| b.to_string()),
                outcome.skyline.len()
            );
            rows.push(Row {
                algo: algo.label().to_string(),
                plan: plan.to_string(),
                candidate_frames,
                messages: total.messages,
                bytes: total.bytes,
                tuples: total.tuples,
                planned_batch: summary.and_then(|s| s.planned_batch),
                sketch_frames,
                answers: outcome.skyline.len(),
            });
        }
    }
    dump_json("planning", &rows);
}

/// Pipelined rounds: wall-clock of the query phase with an injected
/// per-request delay (`DSUD_PIPELINE_DELAY_MS`, default 2 ms), window 1
/// vs `auto`, DSUD and e-DSUD at Table 3 defaults. A sequential round
/// pays the survival scatter and the refill back to back; the pipelined
/// round issues the refill before the scatter, so the two delays overlap.
/// The answer is asserted identical — pipelining is a pure latency
/// optimization.
fn pipeline() {
    use std::time::{Duration, Instant};

    use dsud_core::{
        dsud, edsud, BandwidthMeter, BatchSize, BoundMode, FailurePolicy, Link, LinkConfig,
        LocalSite, PipelineDepth, QueryOutcome, SiteOptions, SubspaceMask, WireFormat,
    };
    use dsud_net::{ChannelLink, DelayedService};

    let delay_ms = std::env::var("DSUD_PIPELINE_DELAY_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(2);
    let delay = Duration::from_millis(delay_ms);
    println!(
        "\n== Pipelined rounds: query wall-clock at Table 3 defaults, {delay_ms} ms/request =="
    );
    let spec = ExpSpec::table3_defaults();
    let mask = SubspaceMask::full(spec.d).expect("valid dims");

    #[derive(Serialize)]
    struct Row {
        algo: String,
        pipeline: String,
        wall_ms: f64,
        speedup: f64,
        answers: usize,
    }
    let mut rows = Vec::new();
    println!(
        "{:<8} {:>9} {:>12} {:>9} {:>9}",
        "algo", "pipeline", "wall(ms)", "speedup", "answers"
    );
    for algo in [Algo::Dsud, Algo::Edsud] {
        let mut reference: Option<(Vec<(u64, u64)>, f64)> = None;
        for window in [PipelineDepth::Fixed(1), PipelineDepth::Auto] {
            let meter = BandwidthMeter::default();
            let mut links: Vec<Box<dyn Link>> = Vec::new();
            for (i, tuples) in spec.generate(0).into_iter().enumerate() {
                let site = LocalSite::new(i as u32, spec.d, tuples, SiteOptions::default())
                    .expect("experiment sites are valid");
                links.push(Box::new(ChannelLink::spawn_with(
                    DelayedService::new(site, delay),
                    meter.clone(),
                    LinkConfig::default(),
                )));
            }
            let started = Instant::now();
            let outcome: QueryOutcome = match algo {
                Algo::Dsud => dsud::run_with_policy(
                    &mut links,
                    &meter,
                    spec.q,
                    mask,
                    None,
                    FailurePolicy::Strict,
                    BatchSize::Fixed(1),
                    window,
                    WireFormat::Legacy,
                    None,
                ),
                _ => edsud::run_with_synopses(
                    &mut links,
                    &meter,
                    spec.q,
                    mask,
                    BoundMode::Paper,
                    None,
                    None,
                    FailurePolicy::Strict,
                    BatchSize::Fixed(1),
                    window,
                    WireFormat::Legacy,
                    None,
                ),
            }
            .expect("experiment queries succeed");
            let wall_ms = started.elapsed().as_secs_f64() * 1e3;
            let answer: Vec<(u64, u64)> = outcome
                .skyline
                .iter()
                .map(|e| (e.tuple.id().seq, e.probability.to_bits()))
                .collect();
            let speedup = match &reference {
                None => {
                    reference = Some((answer, wall_ms));
                    1.0
                }
                Some((r, wall_1)) => {
                    assert_eq!(
                        &answer,
                        r,
                        "{}: pipeline {window} changed the answer",
                        algo.label()
                    );
                    wall_1 / wall_ms
                }
            };
            println!(
                "{:<8} {:>9} {:>12.1} {:>8.2}x {:>9}",
                algo.label(),
                window.to_string(),
                wall_ms,
                speedup,
                outcome.skyline.len()
            );
            rows.push(Row {
                algo: algo.label().to_string(),
                pipeline: window.to_string(),
                wall_ms,
                speedup,
                answers: outcome.skyline.len(),
            });
        }
    }
    dump_json("pipeline", &rows);
}

/// Zero-copy wire layout: legacy vs columnar frames end to end at Table 3
/// defaults over a delayed link (`DSUD_PIPELINE_DELAY_MS`, default 2 ms),
/// batch 16 so every feedback frame clears the columnar byte break-even,
/// plus the dominance-kernel microbenchmark (serial vs chunked comparison
/// kernel at N = 20 000 rows, d ∈ {2, 4, 8}). The skyline and the paper's
/// tuple measure are asserted identical between layouts — the wire format
/// only moves bytes and wall-clock.
fn wire() {
    use std::hint::black_box;
    use std::time::{Duration, Instant};

    use dsud_core::{
        dsud, edsud, BandwidthMeter, BatchSize, BoundMode, FailurePolicy, Link, LinkConfig,
        LocalSite, PipelineDepth, QueryOutcome, SiteOptions, SubspaceMask, WireFormat,
    };
    use dsud_net::{ChannelLink, DelayedService};

    let delay_ms = std::env::var("DSUD_PIPELINE_DELAY_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(2);
    let delay = Duration::from_millis(delay_ms);
    println!(
        "\n== Wire layout: legacy vs columnar frames at Table 3 defaults, batch 16, {delay_ms} ms/request =="
    );
    let spec = ExpSpec::table3_defaults();
    let mask = SubspaceMask::full(spec.d).expect("valid dims");

    #[derive(Serialize)]
    struct Row {
        algo: String,
        wire: String,
        messages: u64,
        bytes: u64,
        tuples: u64,
        wall_ms: f64,
        answers: usize,
    }
    let mut rows = Vec::new();
    println!(
        "{:<8} {:>9} {:>10} {:>14} {:>10} {:>12} {:>9}",
        "algo", "wire", "messages", "bytes", "tuples", "wall(ms)", "answers"
    );
    for algo in [Algo::Dsud, Algo::Edsud] {
        let mut reference: Option<(Vec<(u64, u64)>, u64, u64)> = None;
        for wire in [WireFormat::Legacy, WireFormat::Columnar] {
            let meter = BandwidthMeter::default();
            let mut links: Vec<Box<dyn Link>> = Vec::new();
            for (i, tuples) in spec.generate(0).into_iter().enumerate() {
                let site = LocalSite::new(
                    i as u32,
                    spec.d,
                    tuples,
                    SiteOptions { wire, ..SiteOptions::default() },
                )
                .expect("experiment sites are valid");
                links.push(Box::new(ChannelLink::spawn_with(
                    DelayedService::new(site, delay),
                    meter.clone(),
                    LinkConfig::default(),
                )));
            }
            let started = Instant::now();
            let outcome: QueryOutcome = match algo {
                Algo::Dsud => dsud::run_with_policy(
                    &mut links,
                    &meter,
                    spec.q,
                    mask,
                    None,
                    FailurePolicy::Strict,
                    BatchSize::Fixed(16),
                    PipelineDepth::Fixed(1),
                    wire,
                    None,
                ),
                _ => edsud::run_with_synopses(
                    &mut links,
                    &meter,
                    spec.q,
                    mask,
                    BoundMode::Paper,
                    None,
                    None,
                    FailurePolicy::Strict,
                    BatchSize::Fixed(16),
                    PipelineDepth::Fixed(1),
                    wire,
                    None,
                ),
            }
            .expect("experiment queries succeed");
            let wall_ms = started.elapsed().as_secs_f64() * 1e3;
            let answer: Vec<(u64, u64)> = outcome
                .skyline
                .iter()
                .map(|e| (e.tuple.id().seq, e.probability.to_bits()))
                .collect();
            let total = outcome.traffic.total();
            match &reference {
                None => reference = Some((answer, total.messages, total.tuples)),
                Some((r, messages, tuples)) => {
                    assert_eq!(&answer, r, "{}: {wire} wire changed the answer", algo.label());
                    assert_eq!(
                        total.messages,
                        *messages,
                        "{}: {wire} wire changed message traffic",
                        algo.label()
                    );
                    assert_eq!(
                        total.tuples,
                        *tuples,
                        "{}: {wire} wire changed tuple traffic",
                        algo.label()
                    );
                }
            }
            println!(
                "{:<8} {:>9} {:>10} {:>14} {:>10} {:>12.1} {:>9}",
                algo.label(),
                wire.to_string(),
                total.messages,
                total.bytes,
                total.tuples,
                wall_ms,
                outcome.skyline.len()
            );
            rows.push(Row {
                algo: algo.label().to_string(),
                wire: wire.to_string(),
                messages: total.messages,
                bytes: total.bytes,
                tuples: total.tuples,
                wall_ms,
                answers: outcome.skyline.len(),
            });
        }
    }
    dump_json("wire", &rows);

    // --- Dominance-kernel microbenchmark -------------------------------
    //
    // Survival-product throughput, scalar vs chunked: the scalar baseline
    // is the row-major per-tuple loop (`dominates_in` + complement
    // multiply, exactly what the batched round ran before the SoA kernel);
    // the chunked side is `Batch::survival_product` over the columnar
    // layout with the four-accumulator comparison kernel. Both are
    // asserted bit-identical before timing, same as the criterion bench.
    use dsud_uncertain::{dominates_in, Batch};

    println!("\n== Dominance kernel: scalar tuple loop vs chunked columnar, N = 20000 rows ==");
    const KERNEL_N: usize = 20_000;

    #[derive(Serialize)]
    struct KernelRow {
        d: usize,
        scalar_ms: f64,
        chunked_ms: f64,
        speedup: f64,
        mrows_per_s: f64,
    }
    let mut kernel_rows = Vec::new();
    println!(
        "{:<4} {:>12} {:>13} {:>9} {:>11}",
        "d", "scalar(ms)", "chunked(ms)", "speedup", "Mrows/s"
    );
    for d in [2usize, 4, 8] {
        let tuples = dsud_data::WorkloadSpec::new(KERNEL_N, d)
            .seed(16)
            .generate()
            .expect("kernel workload generates");
        let batch = Batch::from_tuples(d, &tuples);
        let mask = SubspaceMask::full(d).expect("valid dims");
        let probes: Vec<Vec<f64>> =
            tuples.iter().step_by(KERNEL_N / 128).map(|t| t.values().to_vec()).collect();

        let scalar_product = |p: &[f64]| -> f64 {
            let mut product = 1.0;
            for t in &tuples {
                if dominates_in(t.values(), p, mask) {
                    product *= 1.0 - t.prob().get();
                }
            }
            product
        };
        for p in &probes {
            assert_eq!(
                scalar_product(p).to_bits(),
                batch.survival_product(p, mask).to_bits(),
                "kernel must stay bit-identical to the scalar loop"
            );
        }

        // Best-of-5 sweeps over all probes to shave scheduler noise.
        let time_sweep = |f: &dyn Fn(&[f64]) -> f64| -> f64 {
            let mut best = f64::INFINITY;
            for _ in 0..5 {
                let started = Instant::now();
                let mut acc = 0.0;
                for p in &probes {
                    acc += f(black_box(p));
                }
                black_box(acc);
                best = best.min(started.elapsed().as_secs_f64() * 1e3);
            }
            best
        };
        let scalar_ms = time_sweep(&scalar_product);
        let chunked_ms = time_sweep(&|p: &[f64]| batch.survival_product(p, mask));
        let speedup = scalar_ms / chunked_ms;
        let mrows_per_s = (KERNEL_N * probes.len()) as f64 / (chunked_ms * 1e-3) / 1e6;
        println!(
            "{:<4} {:>12.2} {:>13.2} {:>8.2}x {:>11.0}",
            d, scalar_ms, chunked_ms, speedup, mrows_per_s
        );
        if d == 4 {
            assert!(
                speedup >= 1.5,
                "chunked kernel must be >= 1.5x the scalar loop at d = 4, got {speedup:.2}x"
            );
        }
        kernel_rows.push(KernelRow { d, scalar_ms, chunked_ms, speedup, mrows_per_s });
    }
    dump_json("wire_kernel", &kernel_rows);
}

/// Tree-of-coordinators topology: root-link frames, bytes, and
/// wall-clock for flat vs tree:4 vs tree:8 at m ∈ {16, 64, 256}, every
/// hop served through a 2 ms `DelayedService`
/// (`DSUD_PIPELINE_DELAY_MS` overrides). The skyline is asserted
/// bit-identical at every fanout — aggregators merge frames, never fold
/// survival products — and at m = 64 both trees must cut root-link
/// frames by at least 2x, which is the whole point of the layer.
fn topology() {
    use std::time::{Duration, Instant};

    use dsud_core::{Cluster, LinkConfig, QueryConfig, Recorder, SiteOptions, Topology, Transport};

    let delay_ms = std::env::var("DSUD_PIPELINE_DELAY_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(2);
    let delay = Duration::from_millis(delay_ms);
    // The table sweeps to m = 256 threaded sites with a per-hop pause, so
    // it runs at a reduced cardinality regardless of DSUD_SCALE_N.
    let n = scale_n().min(8_000);
    println!("\n== Topology: root fan-out flat vs tree, {delay_ms} ms/hop, N={n}, q=0.3 ==");

    #[derive(Serialize)]
    struct Row {
        m: usize,
        topology: String,
        root_links: usize,
        depth: u32,
        messages: u64,
        bytes: u64,
        wall_ms: f64,
        answers: usize,
    }
    let mut rows = Vec::new();
    println!(
        "{:<6} {:<8} {:>10} {:>6} {:>10} {:>14} {:>10} {:>9}",
        "m", "topology", "root links", "depth", "messages", "bytes", "wall(ms)", "answers"
    );
    for m in [16usize, 64, 256] {
        let spec = ExpSpec { m, n, ..ExpSpec::table3_defaults() };
        let mut reference: Option<(Vec<(u64, u64)>, u64)> = None;
        for topo in [Topology::Flat, Topology::Tree(4), Topology::Tree(8)] {
            let mut cluster = Cluster::with_topology_delayed(
                spec.d,
                spec.generate(0),
                SiteOptions::default(),
                Recorder::default(),
                Transport::Threaded,
                LinkConfig::default(),
                topo,
                delay,
            )
            .expect("experiment clusters are valid");
            let config = QueryConfig::new(spec.q).expect("experiment thresholds are valid");
            let started = Instant::now();
            let outcome = cluster.run_dsud(&config).expect("experiment queries succeed");
            let wall_ms = started.elapsed().as_secs_f64() * 1e3;
            let answer: Vec<(u64, u64)> = outcome
                .skyline
                .iter()
                .map(|e| (e.tuple.id().seq, e.probability.to_bits()))
                .collect();
            let total = outcome.traffic.total();
            match &reference {
                None => reference = Some((answer, total.messages)),
                Some((flat_answer, flat_messages)) => {
                    assert_eq!(&answer, flat_answer, "m={m}: topology {topo} changed the answer");
                    if m == 64 {
                        assert!(
                            total.messages * 2 <= *flat_messages,
                            "m=64: {topo} shipped {} root-link frames vs {} flat (need 2x cut)",
                            total.messages,
                            flat_messages
                        );
                    }
                }
            }
            println!(
                "{:<6} {:<8} {:>10} {:>6} {:>10} {:>14} {:>10.1} {:>9}",
                m,
                topo.to_string(),
                cluster.plan().root_fanout(),
                cluster.plan().depth(),
                total.messages,
                total.bytes,
                wall_ms,
                outcome.skyline.len()
            );
            rows.push(Row {
                m,
                topology: topo.to_string(),
                root_links: cluster.plan().root_fanout(),
                depth: cluster.plan().depth(),
                messages: total.messages,
                bytes: total.bytes,
                wall_ms,
                answers: outcome.skyline.len(),
            });
        }
    }
    dump_json("topology", &rows);
}

/// Eqs. 6–8: estimated vs measured skyline cardinality and the
/// N_back > N_local comparison that motivates feedback selection.
fn estimate_experiment() {
    println!("\n== Eq 6-8: cardinality estimation vs measurement ==");
    println!(
        "{:<8} {:>14} {:>14} {:>14} {:>14}",
        "d", "H(d,N) est", "measured", "N_back", "N_local"
    );
    #[derive(Serialize)]
    struct Row {
        d: usize,
        estimated: f64,
        measured: f64,
        n_back: f64,
        n_local: f64,
    }
    let mut rows = Vec::new();
    for d in [2usize, 3, 4, 5] {
        let spec = ExpSpec { d, ..ExpSpec::table3_defaults() };
        let analysis = estimate::analyze(spec.m, d, spec.n);
        // Measure the *certain* skyline of one materialized world, which is
        // what Eq. 6 models (the kernel is the classic ln^{d-1}(n)/d! law).
        let sites = spec.generate(0);
        let mut world: Vec<Vec<f64>> = Vec::new();
        let mut rng_state = 0x12345678u64;
        for t in sites.iter().flatten() {
            // Deterministic per-tuple materialization.
            rng_state =
                rng_state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let u = ((rng_state >> 11) as f64) / ((1u64 << 53) as f64);
            if u < t.prob().get() {
                world.push(t.values().to_vec());
            }
        }
        let mask = dsud_core::SubspaceMask::full(d).expect("valid dims");
        let measured = dsud_bench::certain_skyline_len(&world, mask) as f64;
        println!(
            "{:<8} {:>14.1} {:>14.0} {:>14.0} {:>14.0}",
            d, analysis.expected_skylines, measured, analysis.n_back, analysis.n_local
        );
        rows.push(Row {
            d,
            estimated: analysis.expected_skylines,
            measured,
            n_back: analysis.n_back,
            n_local: analysis.n_local,
        });
    }
    dump_json("estimate", &rows);
}

/// Table 2: the Section 5.3 worked example, end to end.
fn table2() {
    use dsud_bench::paper_hotel_sites;
    use dsud_core::{Cluster, QueryConfig};
    println!("\n== Table 2: the Section 5.3 hotel example (q = 0.3) ==");
    let config = QueryConfig::new(0.3).expect("0.3 is a valid threshold");
    let mut e_cluster = Cluster::local(2, paper_hotel_sites()).expect("example data is valid");
    let edsud = e_cluster.run_edsud(&config).expect("example query succeeds");
    let mut d_cluster = Cluster::local(2, paper_hotel_sites()).expect("example data is valid");
    let dsud = d_cluster.run_dsud(&config).expect("example query succeeds");

    println!("SKY(H):");
    for entry in &edsud.skyline {
        println!("  {:?}  P_gsky = {:.2}", entry.tuple.values(), entry.probability);
    }
    println!(
        "e-DSUD: {} tuples transmitted, {} broadcasts, {} expunged",
        edsud.tuples_transmitted(),
        edsud.stats.broadcasts,
        edsud.stats.expunged
    );
    println!(
        "DSUD  : {} tuples transmitted, {} broadcasts",
        dsud.tuples_transmitted(),
        dsud.stats.broadcasts
    );
    assert_eq!(edsud.skyline.len(), 3, "the example has exactly three answers");
}

/// Seeded chaos soak: served queries under deterministic link faults,
/// with heartbeat-driven quarantine, rejoin resync, and a deadline
/// cancellation — every outcome must be exact or stamped, and the
/// deployment must converge back to exact answers after it heals.
///
/// `DSUD_CHAOS_SEED` overrides the fault seed; `DSUD_CHAOS_TRANSPORT`
/// picks `inline` (default), `threaded`, or `tcp`. The same seed replays
/// the same schedule on every transport.
fn chaos() {
    use dsud_core::chaos::{soak, ChaosOptions, ChaosReport};
    use dsud_core::{FaultKind, FaultPlan, LinkConfig, Transport, WireFormat};

    // Default to the first seed whose derived plans contain a hard-fault
    // window longer than the retry budget, so the default soak provably
    // exercises the whole lifecycle: quarantine, deferral, resync, rejoin.
    let default_seed = {
        let attempts = u64::from(LinkConfig::default().retry_budget) + 1;
        (1u64..256)
            .find(|&seed| {
                (0..4u32).any(|site| {
                    FaultPlan::seeded(seed, site)
                        .windows()
                        .iter()
                        .any(|w| w.len >= attempts && !matches!(w.kind, FaultKind::Slow(_)))
                })
            })
            .unwrap_or(42)
    };
    let seed =
        std::env::var("DSUD_CHAOS_SEED").ok().and_then(|v| v.parse().ok()).unwrap_or(default_seed);
    let transport = std::env::var("DSUD_CHAOS_TRANSPORT")
        .ok()
        .and_then(|v| v.parse::<Transport>().ok())
        .unwrap_or(Transport::Inline);

    println!("\n== Chaos soak: seeded faults, quarantine, rejoin (seed {seed}, {transport}) ==");
    println!(
        "{:<9} {:>6} {:>6} {:>9} {:>9} {:>11} {:>7} {:>11} {:>7} {:>9}",
        "wire",
        "seed",
        "exact",
        "degraded",
        "cancelled",
        "quarantines",
        "misses",
        "resync_ops",
        "rejoins",
        "recovered"
    );
    let sites = dsud_data::WorkloadSpec::new(600, 3)
        .seed(23)
        .generate_partitioned(4)
        .expect("chaos workload generates");
    let mut reports: Vec<ChaosReport> = Vec::new();
    for wire in [WireFormat::Legacy, WireFormat::Columnar] {
        let opts = ChaosOptions { seed, transport, wire, ..ChaosOptions::default() };
        let report = soak(3, sites.clone(), &opts).expect("chaos soak completes without errors");
        println!(
            "{:<9} {:>6} {:>6} {:>9} {:>9} {:>11} {:>7} {:>11} {:>7} {:>9}",
            wire.as_str(),
            report.seed,
            report.exact,
            report.degraded,
            report.cancelled,
            report.quarantines,
            report.heartbeat_misses,
            report.resync_ops,
            report.rejoins,
            report.recovered
        );
        assert_eq!(
            report.mismatches, 0,
            "{wire}: a non-degraded, non-cancelled outcome diverged from the reference \
             (replay with seed {seed})"
        );
        assert!(
            report.recovered,
            "{wire}: the deployment never converged back to exact answers \
             (replay with seed {seed})"
        );
        assert!(report.cancelled >= 1, "{wire}: the deadline exercise must cancel");
        reports.push(report);
    }
    dump_json("chaos", &reports);
}

fn sanity() {
    let spec = ExpSpec { n: 5_000, m: 10, ..ExpSpec::table3_defaults() };
    assert!(
        verify_against_baseline(&spec),
        "e-DSUD diverged from the centralized baseline — refusing to report numbers"
    );
    println!("[sanity] e-DSUD matches the centralized baseline at N=5000, m=10");
}

fn main() {
    let which: Vec<String> = std::env::args().skip(1).collect();
    let all = which.is_empty() || which.iter().any(|a| a == "all");
    let want = |name: &str| all || which.iter().any(|a| a == name);

    println!(
        "DSUD experiment harness: N={}, repeats={} (override with DSUD_SCALE_N / DSUD_REPEATS)",
        scale_n(),
        repeats()
    );
    sanity();

    if want("fig8") {
        fig8();
    }
    if want("fig9") {
        fig9();
    }
    if want("fig10") {
        fig10();
    }
    if want("fig11") {
        fig11();
    }
    if want("fig12") {
        fig12();
    }
    if want("fig13") {
        fig13();
    }
    if want("fig14") {
        fig14();
    }
    if want("estimate") {
        estimate_experiment();
    }
    if want("report") {
        reports();
    }
    if want("table2") {
        table2();
    }
    if want("batching") {
        batching();
    }
    if want("planning") {
        planning();
    }
    if want("pipeline") {
        pipeline();
    }
    if want("wire") {
        wire();
    }
    if want("topology") {
        topology();
    }
    if want("chaos") {
        chaos();
    }
}
